#include "gpu/cluster.h"

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/intra_op_runtime.h"
#include "gpu/device_group.h"
#include "model/model_spec.h"
#include "support/fixtures.h"
#include "trace/chrome_trace.h"

namespace liger::gpu {
namespace {

using liger::testing::ClusterFixture;
using liger::testing::make_request;

TEST(ClusterTest, TestClusterShape) {
  ClusterFixture f;
  EXPECT_EQ(f.cluster.num_nodes(), 2);
  EXPECT_EQ(f.cluster.devices_per_node(), 2);
  EXPECT_EQ(f.cluster.total_devices(), 4);
  EXPECT_EQ(f.cluster.fabric().num_nodes(), 2);
  EXPECT_EQ(f.cluster.node(0).num_devices(), 2);
}

TEST(ClusterTest, DeviceGroupSlicesMapRanksToNodes) {
  ClusterFixture f;
  const auto whole = DeviceGroup::whole_cluster(f.cluster);
  EXPECT_EQ(whole.size(), 4);
  EXPECT_EQ(whole.num_nodes(), 2);
  EXPECT_TRUE(whole.symmetric());
  EXPECT_EQ(whole.member(0).node, 0);
  EXPECT_EQ(whole.member(3).node, 1);
  EXPECT_EQ(whole.member(3).local_id, 1);
  EXPECT_EQ(whole.fabric(), &f.cluster.fabric());

  const auto slice = DeviceGroup::node_slice(f.cluster, 1, 0, 2);
  EXPECT_EQ(slice.size(), 2);
  EXPECT_TRUE(slice.single_node());
  EXPECT_EQ(slice.member(0).node, 1);
  // Single-node slices of a cluster still see the fabric (pipeline
  // stages reach it for boundary activations).
  EXPECT_EQ(slice.fabric(), &f.cluster.fabric());
}

TEST(ClusterTest, TraceRecordsTaggedWithHostNode) {
  ClusterFixture f;
  trace::ChromeTraceSink sink;
  f.cluster.set_trace_sink(&sink);

  // Run a workload confined to node 1; every device record must carry
  // that node tag, and node 0's devices must stay silent.
  baselines::IntraOpRuntime runtime(DeviceGroup::node_slice(f.cluster, 1, 0, 2),
                                    model::ModelZoo::tiny_test());
  int completed = 0;
  runtime.set_completion_hook([&](const model::BatchRequest&, sim::SimTime) { ++completed; });
  runtime.submit(make_request(0));
  f.engine.run();

  EXPECT_EQ(completed, 1);
  ASSERT_FALSE(sink.records().empty());
  for (const auto& rec : sink.records()) {
    EXPECT_EQ(rec.node, 1) << rec.name;
  }
  EXPECT_GT(sink.busy_time(1, 0, KernelKind::kCompute), 0);
  EXPECT_EQ(sink.busy_time(0, 0, KernelKind::kCompute), 0);
}

TEST(ClusterTest, FabricRowAppearsInChromeJson) {
  ClusterFixture f;
  trace::ChromeTraceSink sink;
  f.cluster.set_trace_sink(&sink);
  f.cluster.fabric().transfer(50'000, 0, 1, "act.b0.s0", [] {});
  f.engine.run();

  EXPECT_GT(sink.fabric_busy_time(), 0);
  std::ostringstream out;
  sink.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"fabric\""), std::string::npos);
  EXPECT_NE(json.find("act.b0.s0"), std::string::npos);
}

TEST(ClusterTest, SingleNodeClusterMatchesStandaloneNodeExactly) {
  // The degenerate path: a 1-node cluster must reproduce standalone-node
  // timing bit for bit (no fabric flow ever starts).
  auto run_standalone = [] {
    liger::testing::NodeFixture f;
    baselines::IntraOpRuntime runtime(f.node, model::ModelZoo::tiny_test());
    runtime.set_completion_hook([](const model::BatchRequest&, sim::SimTime) {});
    for (int i = 0; i < 3; ++i) runtime.submit(make_request(i));
    f.engine.run();
    return f.engine.now();
  };
  auto run_cluster = [] {
    ClusterFixture f(ClusterSpec::single_node(NodeSpec::test_node(2)));
    baselines::IntraOpRuntime runtime(DeviceGroup::node_slice(f.cluster, 0, 0, 2),
                                      model::ModelZoo::tiny_test());
    runtime.set_completion_hook([](const model::BatchRequest&, sim::SimTime) {});
    for (int i = 0; i < 3; ++i) runtime.submit(make_request(i));
    f.engine.run();
    EXPECT_EQ(f.cluster.fabric().active_flows(), 0);
    return f.engine.now();
  };
  EXPECT_EQ(run_standalone(), run_cluster());
}

}  // namespace
}  // namespace liger::gpu
