// Shared helpers for gpu/collective tests: direct command delivery that
// bypasses the host command path, so device mechanics can be tested in
// isolation with exact timings.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "gpu/device.h"
#include "gpu/event.h"
#include "gpu/stream.h"
#include "sim/engine.h"

namespace liger::gpu::testing {

inline KernelDesc make_kernel(const std::string& name, sim::SimTime solo, int blocks,
                              double mem_bw = 0.0, KernelKind kind = KernelKind::kCompute,
                              bool cooperative = false) {
  KernelDesc k;
  k.name = name;
  k.kind = kind;
  k.solo_duration = solo;
  k.blocks = blocks;
  k.cooperative = cooperative;
  k.mem_bw_demand = mem_bw;
  return k;
}

// Delivers a kernel directly to the device (no host CPU cost/latency).
inline void submit_kernel(Stream& s, KernelDesc k, std::function<void()> on_complete = {}) {
  StreamOp op;
  op.kind = StreamOp::Kind::kKernel;
  op.kernel = std::move(k);
  op.on_complete = std::move(on_complete);
  op.stream_seq = s.note_issued();
  s.device().deliver(s, std::move(op));
}

inline void submit_record(Stream& s, std::shared_ptr<Event> ev) {
  StreamOp op;
  op.kind = StreamOp::Kind::kRecordEvent;
  op.event = std::move(ev);
  op.stream_seq = s.note_issued();
  s.device().deliver(s, std::move(op));
}

inline void submit_wait(Stream& s, std::shared_ptr<Event> ev) {
  StreamOp op;
  op.kind = StreamOp::Kind::kWaitEvent;
  op.event = std::move(ev);
  op.stream_seq = s.note_issued();
  s.device().deliver(s, std::move(op));
}

// Records completion times by kernel name.
struct CompletionLog {
  std::map<std::string, sim::SimTime> at;

  std::function<void()> hook(sim::Engine& e, const std::string& name) {
    return [this, &e, name] { at[name] = e.now(); };
  }
};

}  // namespace liger::gpu::testing
