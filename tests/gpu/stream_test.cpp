#include "gpu/stream.h"

#include <gtest/gtest.h>

#include "gpu/device.h"
#include "gpu/gpu_spec.h"
#include "gpu_test_util.h"
#include "sim/engine.h"

namespace liger::gpu {
namespace {

using testing::make_kernel;
using testing::submit_kernel;

TEST(StreamTest, RoundRobinHwQueueAssignment) {
  sim::Engine e;
  Device dev(e, 0, GpuSpec::test_gpu(), DeviceConfig{2});
  auto& s0 = dev.create_stream();
  auto& s1 = dev.create_stream();
  auto& s2 = dev.create_stream();
  EXPECT_EQ(s0.hw_queue(), 0);
  EXPECT_EQ(s1.hw_queue(), 1);
  EXPECT_EQ(s2.hw_queue(), 0);  // wraps at max_connections
}

TEST(StreamTest, IndicesAreSequential) {
  sim::Engine e;
  Device dev(e, 0, GpuSpec::test_gpu());
  EXPECT_EQ(dev.create_stream().index(), 0);
  EXPECT_EQ(dev.create_stream().index(), 1);
  EXPECT_EQ(dev.stream_count(), 2);
}

TEST(StreamTest, IdleTracksIssuedVsCompleted) {
  sim::Engine e;
  Device dev(e, 0, GpuSpec::test_gpu());
  auto& s = dev.create_stream();
  EXPECT_TRUE(s.idle());
  submit_kernel(s, make_kernel("k", 100, 2));
  EXPECT_FALSE(s.idle());
  e.run();
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.issued(), 1u);
  EXPECT_EQ(s.completed(), 1u);
}

TEST(StreamTest, IdleConditionFiresOnDrain) {
  sim::Engine e;
  Device dev(e, 0, GpuSpec::test_gpu());
  auto& s = dev.create_stream();
  submit_kernel(s, make_kernel("a", 300, 2));
  submit_kernel(s, make_kernel("b", 200, 2));
  auto cond = s.idle_condition(e);
  e.run();
  EXPECT_TRUE(cond->fired());
  EXPECT_EQ(cond->fire_time(), 500);
}

TEST(StreamTest, IdleConditionOnIdleStreamFiresImmediately) {
  sim::Engine e;
  Device dev(e, 0, GpuSpec::test_gpu());
  auto& s = dev.create_stream();
  auto cond = s.idle_condition(e);
  EXPECT_TRUE(cond->fired());
}

TEST(StreamTest, IdleConditionIgnoresLaterWork) {
  sim::Engine e;
  Device dev(e, 0, GpuSpec::test_gpu());
  auto& s = dev.create_stream();
  submit_kernel(s, make_kernel("a", 300, 2));
  auto cond = s.idle_condition(e);  // waits for "a" only
  // Work submitted after the sync point must not delay the condition.
  e.schedule_at(100, [&] { submit_kernel(s, make_kernel("late", 900, 2)); });
  e.run();
  EXPECT_TRUE(cond->fired());
  EXPECT_EQ(cond->fire_time(), 300);
}

}  // namespace
}  // namespace liger::gpu
