#include "gpu/node.h"

#include <gtest/gtest.h>

#include "gpu_test_util.h"

namespace liger::gpu {
namespace {

TEST(NodeSpecTest, PaperTestbeds) {
  const auto v100 = NodeSpec::v100_nvlink();
  EXPECT_EQ(v100.num_devices, 4);
  EXPECT_EQ(v100.gpu.sm_count, 80);
  EXPECT_EQ(v100.link.kind, interconnect::LinkKind::kNvLink);
  EXPECT_EQ(v100.max_connections, 2);  // CUDA_DEVICE_MAX_CONNECTIONS=2 (appendix C)

  const auto a100 = NodeSpec::a100_pcie();
  EXPECT_EQ(a100.gpu.sm_count, 108);
  EXPECT_EQ(a100.link.kind, interconnect::LinkKind::kPcieSwitch);
  EXPECT_EQ(a100.gpu.mem_bytes, 80ull << 30);
}

TEST(NodeSpecTest, DeviceCountConfigurable) {
  sim::Engine e;
  Node node(e, NodeSpec::v100_nvlink(2));
  EXPECT_EQ(node.num_devices(), 2);
  EXPECT_EQ(node.device(0).id(), 0);
  EXPECT_EQ(node.device(1).id(), 1);
}

TEST(NodeTest, PerRankHostsAreDistinct) {
  sim::Engine e;
  Node node(e, NodeSpec::test_node(3));
  EXPECT_NE(&node.host(0), &node.host(1));
  EXPECT_NE(&node.host(1), &node.host(2));
}

TEST(NodeTest, TraceSinkAttachesToAllDevices) {
  struct Sink : TraceSink {
    int count = 0;
    void on_kernel(const KernelTraceRecord&) override { ++count; }
  };
  sim::Engine e;
  Node node(e, NodeSpec::test_node(2));
  Sink sink;
  node.set_trace_sink(&sink);
  for (int d = 0; d < 2; ++d) {
    auto& s = node.device(d).create_stream();
    testing::submit_kernel(s, testing::make_kernel("k", 100, 2));
  }
  e.run();
  EXPECT_EQ(sink.count, 2);
}

TEST(NodeTest, TopologySharedAcrossDevices) {
  sim::Engine e;
  Node node(e, NodeSpec::a100_pcie(4));
  EXPECT_EQ(node.topology().num_devices(), 4);
  EXPECT_DOUBLE_EQ(node.topology().spec().allreduce_busbw, 14.88e9);
}

}  // namespace
}  // namespace liger::gpu
