#include "gpu/device.h"

#include <gtest/gtest.h>

#include <map>

#include "gpu/gpu_spec.h"
#include "gpu_test_util.h"
#include "sim/engine.h"

namespace liger::gpu {
namespace {

using testing::CompletionLog;
using testing::make_kernel;
using testing::submit_kernel;
using testing::submit_record;
using testing::submit_wait;

struct DeviceFixture {
  sim::Engine engine;
  Device dev;

  explicit DeviceFixture(int max_connections = 2)
      : dev(engine, 0, GpuSpec::test_gpu(), DeviceConfig{max_connections}) {}
};

TEST(DeviceTest, SingleKernelRunsSoloDuration) {
  DeviceFixture f;
  auto& s = f.dev.create_stream();
  CompletionLog log;
  submit_kernel(s, make_kernel("k", 1000, 10), log.hook(f.engine, "k"));
  f.engine.run();
  EXPECT_EQ(log.at.at("k"), 1000);
  EXPECT_EQ(f.dev.running_kernels(), 0);
  EXPECT_EQ(f.dev.free_blocks(), 10);
}

TEST(DeviceTest, SameStreamKernelsSerialize) {
  DeviceFixture f;
  auto& s = f.dev.create_stream();
  CompletionLog log;
  submit_kernel(s, make_kernel("a", 300, 2), log.hook(f.engine, "a"));
  submit_kernel(s, make_kernel("b", 500, 2), log.hook(f.engine, "b"));
  f.engine.run();
  EXPECT_EQ(log.at.at("a"), 300);
  EXPECT_EQ(log.at.at("b"), 800);  // starts only after a completes
}

TEST(DeviceTest, DifferentStreamsOverlapWhenBlocksSuffice) {
  DeviceFixture f;
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  CompletionLog log;
  submit_kernel(s0, make_kernel("a", 1000, 5), log.hook(f.engine, "a"));
  submit_kernel(s1, make_kernel("b", 1000, 5), log.hook(f.engine, "b"));
  f.engine.run();
  EXPECT_EQ(log.at.at("a"), 1000);
  EXPECT_EQ(log.at.at("b"), 1000);
}

TEST(DeviceTest, LeftOverPolicyPartialGrantSlowsKernel) {
  DeviceFixture f;
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  CompletionLog log;
  // a takes 6 blocks; b wants 6 but only 4 are left -> b runs at 4/6
  // speed until a releases its blocks at t=600.
  submit_kernel(s0, make_kernel("a", 600, 6), log.hook(f.engine, "a"));
  submit_kernel(s1, make_kernel("b", 600, 6), log.hook(f.engine, "b"));
  f.engine.run();
  EXPECT_EQ(log.at.at("a"), 600);
  // b progress by t=600: 600 * (4/6) = 400; remaining 200 at full speed.
  EXPECT_NEAR(static_cast<double>(log.at.at("b")), 800.0, 2.0);
}

TEST(DeviceTest, ComputeKernelStartsWithSingleFreeBlock) {
  DeviceFixture f;
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  CompletionLog log;
  submit_kernel(s0, make_kernel("big", 900, 9), log.hook(f.engine, "big"));
  submit_kernel(s1, make_kernel("small", 100, 10), log.hook(f.engine, "small"));
  f.engine.run();
  // small starts immediately with 1/10 blocks.
  EXPECT_EQ(log.at.at("big"), 900);
  // small: 900ns at rate 0.1 -> 90 done; then full speed for remaining 10.
  EXPECT_NEAR(static_cast<double>(log.at.at("small")), 910.0, 2.0);
}

TEST(DeviceTest, CooperativeKernelWaitsForAllBlocks) {
  DeviceFixture f;
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  CompletionLog log;
  // compute kernel holds 8 of 10 blocks until t=500.
  submit_kernel(s0, make_kernel("comp", 500, 8), log.hook(f.engine, "comp"));
  // cooperative kernel needs 5 blocks at once -> must wait for comp.
  submit_kernel(s1,
                make_kernel("coop", 200, 5, 0.0, KernelKind::kComm, /*cooperative=*/true),
                log.hook(f.engine, "coop"));
  f.engine.run();
  EXPECT_EQ(log.at.at("comp"), 500);
  EXPECT_EQ(log.at.at("coop"), 700);  // starts at 500, runs 200
}

TEST(DeviceTest, NonCooperativeCommWouldNotWait) {
  DeviceFixture f;
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  CompletionLog log;
  submit_kernel(s0, make_kernel("comp", 500, 8), log.hook(f.engine, "comp"));
  // same footprint but non-cooperative: starts right away on leftovers.
  submit_kernel(s1, make_kernel("noncoop", 200, 5, 0.0, KernelKind::kComm, false),
                log.hook(f.engine, "noncoop"));
  f.engine.run();
  // Starts with 2/5 blocks: progress 0.4/ns until 500.
  EXPECT_LT(log.at.at("noncoop"), 700);
}

TEST(DeviceTest, BandwidthOversubscriptionSlowsBothKernels) {
  DeviceFixture f;
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  CompletionLog log;
  // Each kernel alone uses 80% of HBM; together demand 1.6 -> each gets
  // 0.5 -> rate 0.625 -> 1000ns of work takes 1600ns.
  submit_kernel(s0, make_kernel("m0", 1000, 5, 0.8), log.hook(f.engine, "m0"));
  submit_kernel(s1, make_kernel("m1", 1000, 5, 0.8), log.hook(f.engine, "m1"));
  f.engine.run();
  EXPECT_NEAR(static_cast<double>(log.at.at("m0")), 1600.0, 2.0);
  EXPECT_NEAR(static_cast<double>(log.at.at("m1")), 1600.0, 2.0);
}

TEST(DeviceTest, ProportionalSharingSlowsAllPartiesEqually) {
  DeviceFixture f;
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  CompletionLog log;
  // Demands 0.2 and 0.9 oversubscribe the pool (1.1): everyone runs at
  // 1/1.1 — DRAM interference affects both parties (paper §2.3.2).
  submit_kernel(s0, make_kernel("small_bw", 1000, 5, 0.2), log.hook(f.engine, "small_bw"));
  submit_kernel(s1, make_kernel("big_bw", 1000, 5, 0.9), log.hook(f.engine, "big_bw"));
  f.engine.run();
  EXPECT_NEAR(static_cast<double>(log.at.at("small_bw")), 1100.0, 3.0);
  EXPECT_NEAR(static_cast<double>(log.at.at("big_bw")), 1100.0, 3.0);
}

TEST(DeviceTest, UndersubscribedBandwidthDoesNotSlow) {
  DeviceFixture f;
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  CompletionLog log;
  submit_kernel(s0, make_kernel("a", 1000, 5, 0.4), log.hook(f.engine, "a"));
  submit_kernel(s1, make_kernel("b", 1000, 5, 0.5), log.hook(f.engine, "b"));
  f.engine.run();
  EXPECT_EQ(log.at.at("a"), 1000);
  EXPECT_EQ(log.at.at("b"), 1000);
}

TEST(DeviceTest, RecordEventFiresAfterPriorWork) {
  DeviceFixture f;
  auto& s = f.dev.create_stream();
  auto ev = std::make_shared<Event>(f.engine);
  CompletionLog log;
  submit_kernel(s, make_kernel("k", 400, 2), log.hook(f.engine, "k"));
  submit_record(s, ev);
  f.engine.run();
  EXPECT_TRUE(ev->fired());
  EXPECT_EQ(ev->fire_time(), 400);
}

TEST(DeviceTest, RecordEventOnEmptyStreamFiresImmediately) {
  DeviceFixture f;
  auto& s = f.dev.create_stream();
  auto ev = std::make_shared<Event>(f.engine);
  submit_record(s, ev);
  f.engine.run();
  EXPECT_TRUE(ev->fired());
  EXPECT_EQ(ev->fire_time(), 0);
}

TEST(DeviceTest, WaitEventGatesSubsequentKernels) {
  DeviceFixture f;
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  auto ev = std::make_shared<Event>(f.engine);
  CompletionLog log;
  // Stream 1 waits on an event recorded after a long kernel in stream 0.
  submit_kernel(s0, make_kernel("long", 1000, 2), log.hook(f.engine, "long"));
  submit_record(s0, ev);
  submit_wait(s1, ev);
  submit_kernel(s1, make_kernel("gated", 100, 2), log.hook(f.engine, "gated"));
  f.engine.run();
  EXPECT_EQ(log.at.at("gated"), 1100);
}

TEST(DeviceTest, WaitOnFiredEventDoesNotBlock) {
  DeviceFixture f;
  auto& s = f.dev.create_stream();
  auto ev = std::make_shared<Event>(f.engine);
  ev->fire();
  CompletionLog log;
  submit_wait(s, ev);
  submit_kernel(s, make_kernel("k", 100, 2), log.hook(f.engine, "k"));
  f.engine.run();
  EXPECT_EQ(log.at.at("k"), 100);
}

TEST(DeviceTest, SingleConnectionCausesFalseDependency) {
  DeviceFixture f(/*max_connections=*/1);
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  auto ev = std::make_shared<Event>(f.engine);
  CompletionLog log;
  // Stream 0's head is a wait on an event fired at t=800. Stream 1's
  // kernel shares the single hardware queue and is stuck behind it.
  submit_wait(s0, ev);
  submit_kernel(s1, make_kernel("blocked", 100, 2), log.hook(f.engine, "blocked"));
  f.engine.schedule_at(800, [&] { ev->fire(); });
  f.engine.run();
  EXPECT_EQ(log.at.at("blocked"), 900);
}

TEST(DeviceTest, TwoConnectionsAvoidFalseDependency) {
  DeviceFixture f(/*max_connections=*/2);
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  auto ev = std::make_shared<Event>(f.engine);
  CompletionLog log;
  submit_wait(s0, ev);
  submit_kernel(s1, make_kernel("free", 100, 2), log.hook(f.engine, "free"));
  f.engine.schedule_at(800, [&] { ev->fire(); });
  f.engine.run();
  EXPECT_EQ(log.at.at("free"), 100);
}

TEST(DeviceTest, HighPriorityStreamClaimsFreedBlocksFirst) {
  DeviceFixture f(/*max_connections=*/4);
  auto& running = f.dev.create_stream();
  auto& normal = f.dev.create_stream(StreamPriority::kNormal);
  auto& high = f.dev.create_stream(StreamPriority::kHigh);
  CompletionLog log;
  // The hog occupies the whole device first.
  submit_kernel(running, make_kernel("hog", 500, 10), log.hook(f.engine, "hog"));
  f.engine.run_until(10);
  // normal submitted BEFORE high, but high must start first when the
  // hog's blocks release.
  submit_kernel(normal, make_kernel("n", 300, 10), log.hook(f.engine, "n"));
  submit_kernel(high, make_kernel("h", 300, 10), log.hook(f.engine, "h"));
  f.engine.run();
  EXPECT_EQ(log.at.at("hog"), 500);
  EXPECT_EQ(log.at.at("h"), 800);
  EXPECT_EQ(log.at.at("n"), 1100);
}

TEST(DeviceTest, HighPriorityCannotPreemptRunningKernel) {
  DeviceFixture f(/*max_connections=*/2);
  auto& normal = f.dev.create_stream();
  auto& high = f.dev.create_stream(StreamPriority::kHigh);
  CompletionLog log;
  submit_kernel(normal, make_kernel("running", 1000, 10), log.hook(f.engine, "running"));
  f.engine.run_until(10);
  submit_kernel(high, make_kernel("urgent", 100, 10), log.hook(f.engine, "urgent"));
  f.engine.run();
  // The paper's observation (§2.3.1): priority cannot help a kernel
  // that needs resources held by an already-running kernel.
  EXPECT_EQ(log.at.at("running"), 1000);
  EXPECT_EQ(log.at.at("urgent"), 1100);
}

TEST(DeviceTest, BusyTimeAccounting) {
  DeviceFixture f;
  auto& s = f.dev.create_stream();
  CompletionLog log;
  submit_kernel(s, make_kernel("k1", 400, 10), log.hook(f.engine, "k1"));
  f.engine.run();
  // idle gap, then another kernel
  f.engine.schedule_at(1000, [&] { submit_kernel(s, make_kernel("k2", 600, 10)); });
  f.engine.run();
  EXPECT_EQ(f.dev.busy_time_any(), 1000);
  EXPECT_EQ(f.dev.busy_time_compute(), 1000);
  EXPECT_EQ(f.dev.busy_time_comm(), 0);
}

TEST(DeviceTest, TraceSinkReceivesRecords) {
  struct Sink : TraceSink {
    std::vector<KernelTraceRecord> records;
    void on_kernel(const KernelTraceRecord& rec) override { records.push_back(rec); }
  };
  DeviceFixture f;
  Sink sink;
  f.dev.set_trace_sink(&sink);
  auto& s = f.dev.create_stream();
  submit_kernel(s, make_kernel("traced", 250, 4));
  f.engine.run();
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].name, "traced");
  EXPECT_EQ(sink.records[0].start, 0);
  EXPECT_EQ(sink.records[0].end, 250);
  EXPECT_EQ(sink.records[0].blocks_granted, 4);
  EXPECT_EQ(sink.records[0].device, 0);
}

TEST(DeviceTest, CooperativeExactFitStartsImmediately) {
  DeviceFixture f;
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  CompletionLog log;
  submit_kernel(s0, make_kernel("comp", 500, 5), log.hook(f.engine, "comp"));
  // Exactly the 5 remaining blocks: must start at t=0, not wait.
  submit_kernel(s1, make_kernel("coop", 200, 5, 0.0, KernelKind::kComm, true),
                log.hook(f.engine, "coop"));
  f.engine.run();
  EXPECT_EQ(log.at.at("coop"), 200);
}

TEST(DeviceTest, ZeroDurationKernelCompletesInstantly) {
  DeviceFixture f;
  auto& s = f.dev.create_stream();
  CompletionLog log;
  submit_kernel(s, make_kernel("nop", 0, 1), log.hook(f.engine, "nop"));
  submit_kernel(s, make_kernel("next", 100, 1), log.hook(f.engine, "next"));
  f.engine.run();
  EXPECT_EQ(log.at.at("nop"), 0);
  EXPECT_EQ(log.at.at("next"), 100);
}

TEST(DeviceTest, ThreeWayRateRebalanceArithmetic) {
  DeviceFixture f(/*max_connections=*/4);
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  auto& s2 = f.dev.create_stream();
  CompletionLog log;
  // a: 4 blocks/400ns, b: 4 blocks/400ns, c wants 4 but only 2 free.
  submit_kernel(s0, make_kernel("a", 400, 4), log.hook(f.engine, "a"));
  submit_kernel(s1, make_kernel("b", 400, 4), log.hook(f.engine, "b"));
  submit_kernel(s2, make_kernel("c", 400, 4), log.hook(f.engine, "c"));
  f.engine.run();
  EXPECT_EQ(log.at.at("a"), 400);
  EXPECT_EQ(log.at.at("b"), 400);
  // c runs at 2/4 speed for 400ns (200 done), then full speed: 600.
  EXPECT_NEAR(static_cast<double>(log.at.at("c")), 600.0, 2.0);
}

TEST(DeviceTest, FreedBlocksTopUpRunningKernelBeforeQueuedOne) {
  DeviceFixture f(/*max_connections=*/4);
  auto& s0 = f.dev.create_stream();
  auto& s1 = f.dev.create_stream();
  auto& s2 = f.dev.create_stream();
  CompletionLog log;
  // short holds 4; d1 (wants 8) starts under-provisioned with 6;
  // d2 (wants 4) cannot start (no free blocks).
  submit_kernel(s0, make_kernel("short", 100, 4), log.hook(f.engine, "short"));
  submit_kernel(s1, make_kernel("d1", 400, 8), log.hook(f.engine, "d1"));
  submit_kernel(s2, make_kernel("d2", 400, 4), log.hook(f.engine, "d2"));
  f.engine.run();
  // At t=100 the released 4 blocks top up d1 (6->8) FIRST; d2 starts
  // with the 2 left over. d1: 75 done at 0.75 rate, then full ->
  // 100+325=425. d2: 0.5 rate for [100,425] = 162.5 done, tops to 4,
  // remaining 237.5 -> 662.5.
  EXPECT_EQ(log.at.at("short"), 100);
  EXPECT_NEAR(static_cast<double>(log.at.at("d1")), 425.0, 2.0);
  EXPECT_NEAR(static_cast<double>(log.at.at("d2")), 663.0, 3.0);
}

TEST(DeviceTest, ManyKernelsConserveBlocks) {
  DeviceFixture f(4);
  std::vector<Stream*> streams;
  for (int i = 0; i < 4; ++i) streams.push_back(&f.dev.create_stream());
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 4; ++i) {
      submit_kernel(*streams[static_cast<std::size_t>(i)],
                    make_kernel("k", 100 + 37 * i, 3 + i, 0.1 * i));
    }
  }
  f.engine.run();
  EXPECT_EQ(f.dev.free_blocks(), f.dev.total_blocks());
  EXPECT_EQ(f.dev.running_kernels(), 0);
  EXPECT_EQ(f.dev.queued_ops(), 0u);
}

}  // namespace
}  // namespace liger::gpu
