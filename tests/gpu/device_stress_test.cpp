// Randomized stress: a soup of kernels with random shapes, streams and
// arrival times must always drain with conserved resources. Seeds are
// parameterized so failures reproduce exactly.
#include <gtest/gtest.h>

#include "gpu/device.h"
#include "gpu/gpu_spec.h"
#include "gpu_test_util.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace liger::gpu {
namespace {

class DeviceStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeviceStress, RandomKernelSoupDrains) {
  util::Rng rng(GetParam());
  sim::Engine engine;
  Device dev(engine, 0, GpuSpec::v100(), DeviceConfig{2});

  std::vector<Stream*> streams;
  const int n_streams = 2 + static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < n_streams; ++i) {
    streams.push_back(&dev.create_stream(rng.bernoulli(0.2) ? StreamPriority::kHigh
                                                            : StreamPriority::kNormal));
  }

  const int n_kernels = 200;
  int completed = 0;
  for (int i = 0; i < n_kernels; ++i) {
    KernelDesc k;
    k.name = "k" + std::to_string(i);
    k.solo_duration = rng.uniform_int(100, 50000);
    k.blocks = static_cast<int>(rng.uniform_int(1, 80));
    k.mem_bw_demand = rng.uniform_double(0.0, 1.0);
    k.cooperative = false;  // uncoupled cooperative kernels would need a peer
    auto* s = streams[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(streams.size()) - 1))];
    const auto when = rng.uniform_int(0, 500000);
    engine.schedule_at(when, [s, k, &completed] {
      testing::submit_kernel(*s, k, [&completed] { ++completed; });
    });
  }
  engine.run();

  EXPECT_EQ(completed, n_kernels);
  EXPECT_EQ(dev.running_kernels(), 0);
  EXPECT_EQ(dev.free_blocks(), dev.total_blocks());
  EXPECT_EQ(dev.queued_ops(), 0u);
  EXPECT_GT(dev.busy_time_any(), 0);
  EXPECT_LE(dev.busy_time_compute(), dev.busy_time_any());
}

TEST_P(DeviceStress, RandomEventGraphDrains) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  sim::Engine engine;
  Device dev(engine, 0, GpuSpec::test_gpu(), DeviceConfig{2});
  auto& s0 = dev.create_stream();
  auto& s1 = dev.create_stream();

  int completed = 0;
  std::shared_ptr<Event> last_event;
  for (int i = 0; i < 60; ++i) {
    auto& s = rng.bernoulli(0.5) ? s0 : s1;
    const double dice = rng.next_double();
    if (dice < 0.5) {
      testing::submit_kernel(
          &s == &s0 ? s0 : s1,
          testing::make_kernel("k", rng.uniform_int(10, 3000),
                               static_cast<int>(rng.uniform_int(1, 10)),
                               rng.uniform_double(0, 0.8)),
          [&completed] { ++completed; });
    } else if (dice < 0.75 || !last_event) {
      last_event = std::make_shared<Event>(engine);
      testing::submit_record(s, last_event);
    } else {
      testing::submit_wait(s, last_event);
    }
  }
  engine.run();
  EXPECT_TRUE(s0.idle());
  EXPECT_TRUE(s1.idle());
  EXPECT_EQ(dev.free_blocks(), dev.total_blocks());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceStress,
                         ::testing::Values(1u, 2u, 3u, 42u, 777u, 31337u));

}  // namespace
}  // namespace liger::gpu
