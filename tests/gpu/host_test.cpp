#include "gpu/host.h"

#include <gtest/gtest.h>

#include <vector>

#include "gpu/node.h"
#include "sim/task.h"
#include "support/fixtures.h"

namespace liger::gpu {
namespace {

using sim::SimTime;
using HostFixture = liger::testing::NodeFixture;

KernelDesc quick_kernel(const char* name, SimTime solo, int blocks = 2) {
  KernelDesc k;
  k.name = name;
  k.solo_duration = solo;
  k.blocks = blocks;
  return k;
}

TEST(HostTest, LaunchConsumesCpuTime) {
  HostFixture f;
  auto& host = f.node.host(0);
  auto& s = f.node.device(0).create_stream();
  std::vector<SimTime> issue_times;
  [](HostFixture& f, HostContext& host, Stream& s,
     std::vector<SimTime>& issue_times) -> sim::Task {
    issue_times.push_back(f.engine.now());
    co_await host.launch_kernel(s, quick_kernel("a", 100));
    issue_times.push_back(f.engine.now());
    co_await host.launch_kernel(s, quick_kernel("b", 100));
    issue_times.push_back(f.engine.now());
  }(f, host, s, issue_times);
  f.engine.run();
  ASSERT_EQ(issue_times.size(), 3u);
  const SimTime cpu = host.spec().launch_cpu;
  EXPECT_EQ(issue_times[1] - issue_times[0], cpu);
  EXPECT_EQ(issue_times[2] - issue_times[1], cpu);
}

TEST(HostTest, KernelStartsAfterCpuPlusCommandLatency) {
  HostFixture f;
  auto& host = f.node.host(0);
  auto& s = f.node.device(0).create_stream();
  SimTime completed_at = -1;
  [](HostFixture& f, HostContext& host, Stream& s, SimTime& completed_at) -> sim::Task {
    co_await host.launch_kernel(s, quick_kernel("k", 1000),
                                [&f, &completed_at] { completed_at = f.engine.now(); });
  }(f, host, s, completed_at);
  f.engine.run();
  const SimTime cpu = host.spec().launch_cpu;
  const SimTime latency = f.node.topology().command_latency(1);
  EXPECT_EQ(completed_at, cpu + latency + 1000);
}

TEST(HostTest, SyncStreamWaitsForCompletionPlusWake) {
  HostFixture f;
  auto& host = f.node.host(0);
  auto& s = f.node.device(0).create_stream();
  SimTime resumed_at = -1;
  SimTime kernel_done = -1;
  [](HostFixture& f, HostContext& host, Stream& s, SimTime& resumed_at,
     SimTime& kernel_done) -> sim::Task {
    co_await host.launch_kernel(s, quick_kernel("k", 5000),
                                [&f, &kernel_done] { kernel_done = f.engine.now(); });
    co_await host.sync_stream(s);
    resumed_at = f.engine.now();
  }(f, host, s, resumed_at, kernel_done);
  f.engine.run();
  EXPECT_GT(kernel_done, 0);
  EXPECT_EQ(resumed_at, kernel_done + host.spec().sync_wake);
}

TEST(HostTest, SyncEventResumesAfterFirePlusWake) {
  HostFixture f;
  auto& host = f.node.host(0);
  auto& s = f.node.device(0).create_stream();
  auto ev = host.create_event();
  SimTime resumed_at = -1;
  [](HostFixture& f, HostContext& host, Stream& s, std::shared_ptr<Event> ev,
     SimTime& resumed_at) -> sim::Task {
    co_await host.launch_kernel(s, quick_kernel("k", 2000));
    co_await host.record_event(s, ev);
    co_await host.sync_event(*ev);
    resumed_at = f.engine.now();
  }(f, host, s, ev, resumed_at);
  f.engine.run();
  ASSERT_TRUE(ev->fired());
  EXPECT_EQ(resumed_at, ev->fire_time() + host.spec().sync_wake);
}

TEST(HostTest, StreamWaitEventGatesAcrossStreams) {
  HostFixture f;
  auto& host = f.node.host(0);
  auto& dev = f.node.device(0);
  auto& s0 = dev.create_stream();
  auto& s1 = dev.create_stream();
  auto ev = host.create_event();
  SimTime gated_done = -1;
  SimTime long_done = -1;
  [](HostFixture& f, HostContext& host, Stream& s0, Stream& s1, std::shared_ptr<Event> ev,
     SimTime& gated_done, SimTime& long_done) -> sim::Task {
    co_await host.launch_kernel(s0, quick_kernel("long", 10000),
                                [&] { long_done = f.engine.now(); });
    co_await host.record_event(s0, ev);
    co_await host.stream_wait_event(s1, ev);
    co_await host.launch_kernel(s1, quick_kernel("gated", 100),
                                [&] { gated_done = f.engine.now(); });
  }(f, host, s0, s1, ev, gated_done, long_done);
  f.engine.run();
  EXPECT_GT(long_done, 0);
  EXPECT_EQ(gated_done, long_done + 100);
}

TEST(HostTest, CommandsToOneDeviceArriveInOrder) {
  HostFixture f;
  auto& host = f.node.host(0);
  auto& s = f.node.device(0).create_stream();
  std::vector<std::string> completion_order;
  [](HostContext& host, Stream& s, std::vector<std::string>& order) -> sim::Task {
    // Launch a burst; inflation of per-command latency under contention
    // must not reorder arrivals.
    for (int i = 0; i < 8; ++i) {
      co_await host.launch_kernel(s, quick_kernel("k", 10, 1),
                                  [&order, i] { order.push_back("k" + std::to_string(i)); });
    }
  }(host, s, completion_order);
  f.engine.run();
  ASSERT_EQ(completion_order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(completion_order[static_cast<std::size_t>(i)],
                                        "k" + std::to_string(i));
}

TEST(HostTest, TwoRanksLaunchConcurrently) {
  HostFixture f;
  SimTime done0 = -1, done1 = -1;
  auto& s0 = f.node.device(0).create_stream();
  auto& s1 = f.node.device(1).create_stream();
  auto actor = [](HostFixture& f, HostContext& host, Stream& s, SimTime& done) -> sim::Task {
    co_await host.launch_kernel(s, quick_kernel("k", 1000),
                                [&f, &done] { done = f.engine.now(); });
  };
  actor(f, f.node.host(0), s0, done0);
  actor(f, f.node.host(1), s1, done1);
  f.engine.run();
  // Both ranks have their own CPU; completions land near-simultaneously
  // (only command-bus contention separates them).
  EXPECT_GT(done0, 0);
  EXPECT_GT(done1, 0);
  EXPECT_LT(std::abs(done0 - done1), sim::microseconds(2));
}

}  // namespace
}  // namespace liger::gpu
