#include "fault/injector.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "gpu/gpu_test_util.h"
#include "sim/parallel_engine.h"
#include "support/fixtures.h"
#include "trace/chrome_trace.h"

namespace liger::fault {
namespace {

using gpu::testing::CompletionLog;
using gpu::testing::make_kernel;
using gpu::testing::submit_kernel;
using liger::testing::ClusterFixture;
using liger::testing::NodeFixture;

FaultPlan single(FaultEvent ev) {
  FaultPlan plan;
  plan.events.push_back(ev);
  return plan;
}

TEST(FaultInjectorTest, EmptyPlanSchedulesNothing) {
  NodeFixture f;
  FaultInjector injector(FaultTargets::from_node(f.node), FaultPlan{});
  injector.schedule();
  f.engine.run();
  // No events at all: the simulation never advances, so an empty plan
  // provably leaves the event stream untouched.
  EXPECT_EQ(f.engine.now(), 0);
  EXPECT_EQ(injector.injected(), 0u);
}

TEST(FaultInjectorTest, FailStopKillsDeviceAndEmitsTraceRecord) {
  NodeFixture f;
  trace::ChromeTraceSink sink;
  auto targets = FaultTargets::from_node(f.node);
  targets.trace = &sink;

  FaultEvent ev;
  ev.kind = FaultKind::kDeviceFailStop;
  ev.time = sim::microseconds(2);
  ev.device = 1;
  FaultInjector injector(targets, single(ev));
  injector.schedule();

  CompletionLog log;
  auto& s = f.node.device(1).create_stream();
  submit_kernel(s, make_kernel("doomed", sim::microseconds(10), 1),
                log.hook(f.engine, "doomed"));
  f.engine.run();

  EXPECT_TRUE(f.node.device(1).failed());
  EXPECT_GE(f.node.device(1).dropped_ops(), 1u);
  // The purge force-completes the command so host-side waiters drain —
  // at the fault time, not at the kernel's natural completion.
  EXPECT_EQ(log.at.at("doomed"), sim::microseconds(2));

  ASSERT_EQ(sink.fault_records().size(), 1u);
  const auto& rec = sink.fault_records()[0];
  EXPECT_EQ(rec.phase, gpu::FaultPhase::kInjected);
  EXPECT_EQ(rec.name, "fail_stop(n0.g1)");
  EXPECT_EQ(rec.node, 0);
  EXPECT_EQ(rec.device, 1);
  EXPECT_EQ(rec.start, sim::microseconds(2));
}

TEST(FaultInjectorTest, StragglerSlowsKernelsThenRestores) {
  NodeFixture f;
  FaultEvent ev;
  ev.kind = FaultKind::kStraggler;
  ev.time = sim::microseconds(1);
  ev.device = 0;
  ev.factor = 0.25;
  ev.duration = sim::microseconds(10);  // window [1us, 11us)
  FaultInjector injector(FaultTargets::from_node(f.node), single(ev));
  injector.schedule();

  CompletionLog log;
  auto& s = f.node.device(0).create_stream();
  // Inside the window: a 1us kernel runs at 1/4 rate -> 4us.
  f.engine.schedule_at(sim::microseconds(2), [&f, &s, &log] {
    submit_kernel(s, make_kernel("slow", sim::microseconds(1), 1),
                  log.hook(f.engine, "slow"));
  });
  // After the window: full speed again.
  f.engine.schedule_at(sim::microseconds(20), [&f, &s, &log] {
    submit_kernel(s, make_kernel("fast", sim::microseconds(1), 1),
                  log.hook(f.engine, "fast"));
  });
  f.engine.run();

  EXPECT_EQ(log.at.at("slow"), sim::microseconds(6));
  EXPECT_EQ(log.at.at("fast"), sim::microseconds(21));
  EXPECT_DOUBLE_EQ(f.node.device(0).perf_factor(), 1.0);
  EXPECT_FALSE(f.node.device(0).failed());
}

TEST(FaultInjectorTest, HostStallPushesLaunchHorizon) {
  NodeFixture f;
  FaultEvent ev;
  ev.kind = FaultKind::kHostStall;
  ev.time = sim::microseconds(1);
  ev.device = 0;
  ev.duration = sim::microseconds(5);
  auto targets = FaultTargets::from_node(f.node);
  FaultInjector injector(targets, single(ev));
  injector.schedule();
  f.engine.run();
  EXPECT_EQ(targets.host(0, 0).stalled_until(), sim::microseconds(6));
}

TEST(FaultInjectorTest, LinkDegradeScalesFabricAndRestores) {
  ClusterFixture f;
  FaultEvent ev;
  ev.kind = FaultKind::kLinkDegrade;
  ev.time = sim::microseconds(1);
  ev.node = 1;
  ev.factor = 0.25;
  ev.duration = sim::microseconds(10);
  auto targets = FaultTargets::from_cluster(f.cluster);
  FaultInjector injector(targets, single(ev));
  injector.schedule();

  double mid = -1.0;
  f.engine.schedule_at(sim::microseconds(5),
                       [&f, &mid] { mid = f.cluster.fabric().link_factor(1); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(mid, 0.25);
  EXPECT_DOUBLE_EQ(f.cluster.fabric().link_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(f.cluster.fabric().link_factor(0), 1.0);  // other nodes untouched
}

TEST(FaultInjectorTest, LinkFlapTogglesEveryHalfPeriodAndEndsHealthy) {
  ClusterFixture f;
  FaultEvent ev;
  ev.kind = FaultKind::kLinkFlap;
  ev.time = sim::microseconds(1);
  ev.node = 1;
  ev.factor = 0.1;
  ev.period = sim::microseconds(4);   // toggles every 2us: 1,3,5,7
  ev.duration = sim::microseconds(8); // window [1us, 9us)
  FaultInjector injector(FaultTargets::from_cluster(f.cluster), single(ev));
  injector.schedule();

  std::vector<double> probes;
  for (int t : {2, 4, 6}) {
    f.engine.schedule_at(sim::microseconds(t),
                         [&f, &probes] { probes.push_back(f.cluster.fabric().link_factor(1)); });
  }
  f.engine.run();
  ASSERT_EQ(probes.size(), 3u);
  EXPECT_DOUBLE_EQ(probes[0], 0.1);  // degraded phase
  EXPECT_DOUBLE_EQ(probes[1], 1.0);  // healthy phase
  EXPECT_DOUBLE_EQ(probes[2], 0.1);  // degraded again
  EXPECT_DOUBLE_EQ(f.cluster.fabric().link_factor(1), 1.0);
}

TEST(FaultInjectorTest, LinkFaultWithoutFabricIsRejected) {
  NodeFixture f;
  FaultEvent ev;
  ev.kind = FaultKind::kLinkDegrade;
  ev.factor = 0.5;
  EXPECT_THROW(FaultInjector(FaultTargets::from_node(f.node), single(ev)),
               std::invalid_argument);
}

TEST(FaultInjectorTest, ValidatesPlanAgainstTopology) {
  NodeFixture f;  // 2 devices on one node
  FaultEvent ev;
  ev.kind = FaultKind::kDeviceFailStop;
  ev.device = 2;  // out of range
  EXPECT_THROW(FaultInjector(FaultTargets::from_node(f.node), single(ev)),
               std::invalid_argument);
}

TEST(FaultInjectorTest, OwningEngineRoutesFaultsToTheirDomain) {
  // On a partitioned cluster each fault must be scheduled on the engine
  // that owns the state it mutates: device/host faults on the target
  // node's domain, link faults on the fabric (host) domain. On a
  // serial cluster these are all one engine, so the routing is only
  // observable here.
  sim::ParallelEngine pe(3);  // fabric/host + 2 nodes
  gpu::Cluster cluster(pe, gpu::ClusterSpec::test_cluster());
  const FaultTargets targets = FaultTargets::from_cluster(cluster);

  FaultEvent dev;
  dev.kind = FaultKind::kDeviceFailStop;
  dev.node = 1;
  dev.device = 0;
  EXPECT_EQ(&targets.owning_engine(dev), &pe.domain(2));

  FaultEvent straggler;
  straggler.kind = FaultKind::kStraggler;
  straggler.node = 0;
  straggler.factor = 0.5;
  EXPECT_EQ(&targets.owning_engine(straggler), &pe.domain(1));

  FaultEvent link;
  link.kind = FaultKind::kLinkDegrade;
  link.node = 1;
  link.factor = 0.5;
  EXPECT_EQ(&targets.owning_engine(link), &pe.domain(0));
  EXPECT_EQ(&cluster.engine(), &pe.domain(0));
}

}  // namespace
}  // namespace liger::fault
