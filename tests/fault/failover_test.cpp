// End-to-end failover: fail-stop detection, generation retirement,
// degraded-mode replanning through the shared PlanCache, the server's
// retry/backoff policy, and the no-fault/determinism guarantees the
// availability benches rely on.
#include "fault/failover.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/liger_runtime.h"
#include "fault/injector.h"
#include "serving/arrival.h"
#include "serving/experiment.h"
#include "serving/server.h"
#include "support/fixtures.h"

namespace liger::fault {
namespace {

using liger::testing::make_request;
using liger::testing::NodeFixture;

FaultPlan fail_stop_at(sim::SimTime t, int device, int node = 0) {
  FaultEvent ev;
  ev.kind = FaultKind::kDeviceFailStop;
  ev.time = t;
  ev.node = node;
  ev.device = device;
  FaultPlan plan;
  plan.events.push_back(ev);
  return plan;
}

// Makespan of the same backlog on a healthy node — used to aim the
// fault at the middle of the run.
sim::SimTime healthy_makespan(int requests) {
  NodeFixture f(gpu::NodeSpec::test_node(4));
  core::LigerRuntime rt(f.node, model::ModelZoo::tiny_test());
  liger::testing::submit_backlog(rt, requests, 2, 64);
  f.engine.run();
  return f.engine.now();
}

TEST(FailoverTest, FailStopShrinksTpGroupReplansOnceAndCompletesAll) {
  const int kRequests = 6;
  const sim::SimTime fail_at = healthy_makespan(kRequests) / 2;
  ASSERT_GT(fail_at, 0);

  NodeFixture f(gpu::NodeSpec::test_node(4));
  core::PlanCache cache;
  auto factory = [&f, &cache](const std::vector<bool>& alive) {
    std::vector<int> survivors;
    for (int i = 0; i < f.node.num_devices(); ++i) {
      if (alive[static_cast<std::size_t>(i)]) survivors.push_back(i);
    }
    return std::make_unique<core::LigerRuntime>(
        gpu::DeviceGroup::node_subset(f.node, survivors), model::ModelZoo::tiny_test(),
        core::LigerOptions{}, &cache);
  };

  FailoverRuntime::Options opts;
  opts.detection.heartbeat_interval = sim::microseconds(50);
  opts.detection.miss_threshold = 2;
  opts.replan_latency = sim::microseconds(500);
  FailoverRuntime fr(FaultTargets::from_node(f.node), factory, opts);
  EXPECT_EQ(cache.epoch(), 1u);  // generation 0 rebound the shared cache

  int completed = 0;
  fr.set_completion_hook(
      [&completed](const model::BatchRequest&, sim::SimTime) { ++completed; });
  // Server-style retry: resubmit dropped batches after a short delay.
  int drops = 0;
  fr.set_drop_hook([&f, &fr, &drops](const model::BatchRequest& r) {
    ++drops;
    model::BatchRequest again = r;
    f.engine.schedule_after(sim::microseconds(20), [&fr, again] { fr.submit(again); });
  });

  FaultInjector injector(FaultTargets::from_node(f.node), fail_stop_at(fail_at, 2));
  injector.schedule();
  for (int i = 0; i < kRequests; ++i) fr.submit(make_request(i, 2, 64));
  f.engine.run();

  EXPECT_EQ(completed, kRequests);  // every batch survives via retry/deferral
  EXPECT_EQ(fr.generation(), 1);
  EXPECT_FALSE(fr.recovering());
  EXPECT_TRUE(f.node.device(2).failed());
  EXPECT_FALSE(fr.alive()[2]);

  const auto& st = fr.failover_stats();
  EXPECT_EQ(st.failovers, 1);
  EXPECT_GE(st.requests_dropped, 1u);
  EXPECT_GE(st.last_fault_detected, fail_at);
  // Backlogged work keeps the monitor armed across the fault, so the
  // heartbeat bound holds (plus one interval of tick-grid alignment).
  EXPECT_LE(st.last_fault_detected,
            fail_at + opts.detection.max_detection_latency() +
                opts.detection.heartbeat_interval);
  EXPECT_EQ(st.last_recovery_latency(), opts.replan_latency);

  // The rebuilt generation runs on the three survivors...
  auto& backend = dynamic_cast<core::LigerRuntime&>(fr.backend());
  EXPECT_EQ(backend.group().size(), 3);
  // ...and the shared cache replanned the (one) batch shape exactly once
  // per topology epoch: one compile at tp=4, one after the shrink.
  EXPECT_EQ(cache.epoch(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_GT(cache.hits(), 0u);
}

TEST(FailoverTest, SecondFailureShrinksAgain) {
  const int kRequests = 8;
  const sim::SimTime makespan = healthy_makespan(kRequests);

  NodeFixture f(gpu::NodeSpec::test_node(4));
  core::PlanCache cache;
  auto factory = [&f, &cache](const std::vector<bool>& alive) {
    std::vector<int> survivors;
    for (int i = 0; i < f.node.num_devices(); ++i) {
      if (alive[static_cast<std::size_t>(i)]) survivors.push_back(i);
    }
    return std::make_unique<core::LigerRuntime>(
        gpu::DeviceGroup::node_subset(f.node, survivors), model::ModelZoo::tiny_test(),
        core::LigerOptions{}, &cache);
  };
  FailoverRuntime::Options opts;
  opts.detection.heartbeat_interval = sim::microseconds(50);
  opts.detection.miss_threshold = 2;
  opts.replan_latency = sim::microseconds(200);
  FailoverRuntime fr(FaultTargets::from_node(f.node), factory, opts);

  int completed = 0;
  fr.set_completion_hook(
      [&completed](const model::BatchRequest&, sim::SimTime) { ++completed; });
  fr.set_drop_hook([&f, &fr](const model::BatchRequest& r) {
    model::BatchRequest again = r;
    f.engine.schedule_after(sim::microseconds(20), [&fr, again] { fr.submit(again); });
  });

  auto plan = fail_stop_at(makespan / 4, 3);
  auto second = fail_stop_at(makespan, 1);  // well after the first recovery
  plan.events.push_back(second.events[0]);
  FaultInjector injector(FaultTargets::from_node(f.node), plan);
  injector.schedule();
  for (int i = 0; i < kRequests; ++i) fr.submit(make_request(i, 2, 64));
  f.engine.run();

  EXPECT_EQ(completed, kRequests);
  EXPECT_EQ(fr.generation(), 2);
  EXPECT_EQ(fr.failover_stats().failovers, 2);
  EXPECT_EQ(dynamic_cast<core::LigerRuntime&>(fr.backend()).group().size(), 2);
  EXPECT_EQ(cache.epoch(), 3u);
}

// --- Server retry policy (satellite of the failover path) ----------------

// Drops the first `drops_before_success` submissions after a fixed
// delay, then serves the rest with a fixed service time.
class FlakyRuntime : public core::InferenceRuntime {
 public:
  FlakyRuntime(sim::Engine& engine, int drops_before_success,
               sim::SimTime service, sim::SimTime drop_delay)
      : engine_(engine), drops_left_(drops_before_success), service_(service),
        drop_delay_(drop_delay) {}

  void submit(model::BatchRequest request) override {
    submit_times.push_back(engine_.now());
    if (drops_left_ > 0) {
      --drops_left_;
      engine_.schedule_after(drop_delay_, [this, request] { notify_dropped(request); });
    } else {
      engine_.schedule_after(service_, [this, request] {
        notify_complete(request, engine_.now());
      });
    }
  }
  std::string name() const override { return "flaky"; }

  std::vector<sim::SimTime> submit_times;

 private:
  sim::Engine& engine_;
  int drops_left_;
  sim::SimTime service_;
  sim::SimTime drop_delay_;
};

serving::WorkloadConfig retry_workload(int max_retries, double jitter) {
  serving::WorkloadConfig w;
  w.num_requests = 1;
  w.batch_size = 2;
  w.seq_min = 16;
  w.seq_max = 16;
  w.max_retries = max_retries;
  w.retry_backoff = sim::milliseconds(1);
  w.retry_backoff_cap = sim::milliseconds(4);
  w.retry_jitter = jitter;
  return w;
}

TEST(FailoverTest, RetryBackoffDoublesUpToTheCap) {
  NodeFixture f;
  const sim::SimTime drop_delay = sim::microseconds(10);
  FlakyRuntime flaky(f.engine, /*drops_before_success=*/4, sim::microseconds(10),
                     drop_delay);
  serving::Server server(f.engine, flaky, retry_workload(/*max_retries=*/5, 0.0));
  serving::ConstantArrivals arrivals(1000.0);
  const auto rep = server.run(arrivals);

  EXPECT_EQ(rep.completed, 1u);
  EXPECT_EQ(rep.retries, 4u);
  EXPECT_EQ(rep.lost, 0u);
  EXPECT_EQ(server.abandoned(), 0u);
  // Gaps between attempts: drop delay + the dispatch cost of routing
  // the drop hook to the frontend + min(1ms * 2^(k-1), 4ms), no jitter.
  const sim::SimTime hook = core::kCompletionDispatchLatency;
  ASSERT_EQ(flaky.submit_times.size(), 5u);
  EXPECT_EQ(flaky.submit_times[1] - flaky.submit_times[0],
            drop_delay + hook + sim::milliseconds(1));
  EXPECT_EQ(flaky.submit_times[2] - flaky.submit_times[1],
            drop_delay + hook + sim::milliseconds(2));
  EXPECT_EQ(flaky.submit_times[3] - flaky.submit_times[2],
            drop_delay + hook + sim::milliseconds(4));
  // 2^3 = 8ms would exceed the cap: clamped.
  EXPECT_EQ(flaky.submit_times[4] - flaky.submit_times[3],
            drop_delay + hook + sim::milliseconds(4));
}

TEST(FailoverTest, RetryBudgetExhaustionAbandonsTheRequest) {
  NodeFixture f;
  FlakyRuntime flaky(f.engine, /*drops_before_success=*/100, sim::microseconds(10),
                     sim::microseconds(10));
  serving::Server server(f.engine, flaky, retry_workload(/*max_retries=*/2, 0.0));
  serving::ConstantArrivals arrivals(1000.0);
  const auto rep = server.run(arrivals);

  EXPECT_EQ(flaky.submit_times.size(), 3u);  // first attempt + 2 retries
  EXPECT_EQ(rep.completed, 0u);
  EXPECT_EQ(rep.retries, 2u);
  EXPECT_EQ(rep.lost, 1u);
  EXPECT_EQ(server.abandoned(), 1u);
}

TEST(FailoverTest, RetryJitterIsBoundedAndDeterministic) {
  auto run_once = [] {
    NodeFixture f;
    FlakyRuntime flaky(f.engine, /*drops_before_success=*/2, sim::microseconds(10),
                       sim::microseconds(10));
    serving::Server server(f.engine, flaky, retry_workload(/*max_retries=*/3, 0.25));
    serving::ConstantArrivals arrivals(1000.0);
    server.run(arrivals);
    return flaky.submit_times;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);  // the forked retry RNG replays bit-for-bit

  ASSERT_EQ(a.size(), 3u);
  const sim::SimTime drop_delay = sim::microseconds(10);
  const sim::SimTime g1 = a[1] - a[0] - drop_delay;
  const sim::SimTime g2 = a[2] - a[1] - drop_delay;
  // backoff * (1 +/- 0.25)
  EXPECT_GE(g1, sim::milliseconds(1) * 3 / 4);
  EXPECT_LE(g1, sim::milliseconds(1) * 5 / 4);
  EXPECT_GE(g2, sim::milliseconds(2) * 3 / 4);
  EXPECT_LE(g2, sim::milliseconds(2) * 5 / 4);
}

// --- Experiment-level wiring ---------------------------------------------

serving::ExperimentConfig tiny_fault_experiment(int requests) {
  auto cfg = liger::testing::tiny_experiment_config(serving::Method::kLiger, 0.0,
                                                    requests);
  cfg.node = gpu::NodeSpec::test_node(4);
  cfg.workload.seq_min = 64;
  cfg.workload.seq_max = 64;
  const sim::SimTime unit = serving::isolated_intra_batch_time(
      cfg.node, cfg.model, cfg.workload.batch_size, 64, model::Phase::kPrefill);
  cfg.rate = 0.5 / sim::to_seconds(unit);
  cfg.workload.deadline = 8 * unit;
  cfg.workload.max_retries = 5;
  cfg.workload.retry_jitter = 0.25;
  return cfg;
}

TEST(FailoverTest, ExperimentFailStopRecoversAndServesEveryRequest) {
  auto cfg = tiny_fault_experiment(16);
  cfg.faults.enabled = true;
  // Mid-stream: roughly half the requests have arrived.
  const sim::SimTime fault_time = sim::from_seconds(8.0 / cfg.rate);
  cfg.faults.plan = fail_stop_at(fault_time, /*device=*/1);
  cfg.faults.detection.heartbeat_interval = sim::microseconds(100);
  cfg.faults.detection.miss_threshold = 3;
  cfg.faults.replan_latency = sim::milliseconds(1);

  const auto out = serving::run_experiment_detailed(cfg);
  EXPECT_EQ(out.failover.failovers, 1);
  EXPECT_EQ(out.report.completed, 16u);
  EXPECT_EQ(out.report.lost, 0u);
  EXPECT_GE(out.failover.last_fault_detected, fault_time);
  EXPECT_EQ(out.failover.last_recovery_latency(), sim::milliseconds(1));
  // Goodput never exceeds throughput, and the outage can only cost.
  EXPECT_LE(out.report.goodput_bps, out.report.throughput_bps);
}

TEST(FailoverTest, DisabledFaultsAndEmptyPlanAreBitIdentical) {
  // faults.enabled with an empty plan wraps the runtime in the failover
  // decorator but injects nothing; the acceptance bar is a bit-identical
  // Report against the undecorated path.
  const auto cfg = tiny_fault_experiment(12);
  auto wrapped_cfg = cfg;
  wrapped_cfg.faults.enabled = true;

  const auto plain = serving::run_experiment_detailed(cfg);
  const auto wrapped = serving::run_experiment_detailed(wrapped_cfg);

  EXPECT_EQ(wrapped.failover.failovers, 0);
  EXPECT_EQ(plain.completion_times, wrapped.completion_times);
  EXPECT_EQ(plain.report.completed, wrapped.report.completed);
  EXPECT_EQ(plain.report.timed_out, wrapped.report.timed_out);
  EXPECT_EQ(plain.report.retries, wrapped.report.retries);
  EXPECT_EQ(plain.report.lost, wrapped.report.lost);
  EXPECT_EQ(plain.report.makespan, wrapped.report.makespan);
  EXPECT_EQ(plain.report.throughput_bps, wrapped.report.throughput_bps);
  EXPECT_EQ(plain.report.goodput_bps, wrapped.report.goodput_bps);
  EXPECT_EQ(plain.report.avg_latency_ms, wrapped.report.avg_latency_ms);
  EXPECT_EQ(plain.report.p99_latency_ms, wrapped.report.p99_latency_ms);
}

TEST(FailoverTest, SameFaultPlanReplaysBitIdentical) {
  auto cfg = tiny_fault_experiment(12);
  cfg.faults.enabled = true;
  cfg.faults.plan = fail_stop_at(sim::from_seconds(6.0 / cfg.rate), /*device=*/2);
  cfg.faults.replan_latency = sim::milliseconds(1);

  const auto a = serving::run_experiment_detailed(cfg);
  const auto b = serving::run_experiment_detailed(cfg);
  EXPECT_EQ(a.completion_times, b.completion_times);
  EXPECT_EQ(a.report.completed, b.report.completed);
  EXPECT_EQ(a.report.retries, b.report.retries);
  EXPECT_EQ(a.report.timed_out, b.report.timed_out);
  EXPECT_EQ(a.report.goodput_bps, b.report.goodput_bps);
  EXPECT_EQ(a.failover.last_fault_detected, b.failover.last_fault_detected);
  EXPECT_EQ(a.failover.last_recovered, b.failover.last_recovered);
  EXPECT_EQ(a.failover.requests_dropped, b.failover.requests_dropped);
}

TEST(FailoverTest, FailStopUnderBaselineMethodIsRejected) {
  auto cfg = liger::testing::tiny_experiment_config(serving::Method::kIntraOp, 100.0, 4);
  cfg.faults.enabled = true;
  cfg.faults.plan = fail_stop_at(sim::milliseconds(1), /*device=*/1);
  EXPECT_THROW(serving::run_experiment(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace liger::fault
