// Fault-tolerant iteration-level serving: fail-stop recovery under
// continuous batching (KV purge + pool rebuild at survivor capacity,
// drop-and-recompute re-queueing, deadline/budget-aware shedding), the
// per-fault-kind validation matrix, the lone-group livelock guard, and
// the chaos bit-identity suite (fault kinds x seeds x engine threads).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <tuple>

#include "fault/fault_plan.h"
#include "serving/experiment.h"
#include "support/fixtures.h"

namespace liger::fault {
namespace {

// Head count divisible by every survivor TP width that a single
// fail-stop can produce on the 2- and 4-device test nodes (4 -> 3,
// 2 -> 1), so degraded-mode replanning stays legal in assert builds.
model::ModelSpec chaos_model() {
  model::ModelSpec spec;
  spec.name = "tiny-fault";
  spec.layers = 2;
  spec.heads = 12;
  spec.hidden = 96;
  return spec;
}

FaultPlan fail_stop_at(sim::SimTime t, int device, int node = 0) {
  FaultEvent ev;
  ev.kind = FaultKind::kDeviceFailStop;
  ev.time = t;
  ev.node = node;
  ev.device = device;
  FaultPlan plan;
  plan.events.push_back(ev);
  return plan;
}

FaultPlan straggler_at(sim::SimTime t, int device, double factor,
                       sim::SimTime duration) {
  FaultEvent ev;
  ev.kind = FaultKind::kStraggler;
  ev.time = t;
  ev.device = device;
  ev.factor = factor;
  ev.duration = duration;
  FaultPlan plan;
  plan.events.push_back(ev);
  return plan;
}

FaultPlan link_flap_at(sim::SimTime t, int node, double factor,
                       sim::SimTime duration, sim::SimTime period) {
  FaultEvent ev;
  ev.kind = FaultKind::kLinkFlap;
  ev.time = t;
  ev.node = node;
  ev.factor = factor;
  ev.duration = duration;
  ev.period = period;
  FaultPlan plan;
  plan.events.push_back(ev);
  return plan;
}

// A generative workload busy enough that a mid-run fault always lands
// on a non-empty running set: arrivals at twice the isolated prefill
// service rate keep a backlog until the tail of the run.
serving::ExperimentConfig chaos_config(
    int requests, std::uint64_t seed,
    serving::BatchingMode mode = serving::BatchingMode::kContinuous) {
  auto cfg = liger::testing::tiny_experiment_config(serving::Method::kLiger, 0.0,
                                                    requests);
  cfg.node = gpu::NodeSpec::test_node(4);
  cfg.model = chaos_model();
  cfg.profile_contention = false;
  cfg.batching = mode;
  cfg.workload.seq_min = 16;
  cfg.workload.seq_max = 48;
  cfg.workload.decode_tokens_min = 2;
  cfg.workload.decode_tokens_max = 8;
  cfg.workload.seed = seed;
  cfg.workload.max_retries = 5;
  const sim::SimTime unit = serving::isolated_intra_batch_time(
      cfg.node, cfg.model, cfg.workload.batch_size, 32, model::Phase::kPrefill);
  cfg.rate = 2.0 / sim::to_seconds(unit);
  return cfg;
}

// Makespan of the same workload without faults — used to aim the fault
// at the middle of the run.
sim::SimTime healthy_midpoint(const serving::ExperimentConfig& cfg) {
  auto healthy = cfg;
  healthy.faults = fault::FaultConfig{};
  const auto rep = serving::run_experiment(healthy);
  return rep.makespan / 2;
}

void arm_fault(serving::ExperimentConfig& cfg, FaultPlan plan) {
  cfg.faults.enabled = true;
  cfg.faults.plan = std::move(plan);
  cfg.faults.detection.heartbeat_interval = sim::microseconds(100);
  cfg.faults.detection.miss_threshold = 3;
  cfg.faults.replan_latency = sim::milliseconds(1);
}

// Every Report field a scheduling decision can move, at full precision.
// Two runs with equal footprints took the same decisions at the same
// times; any drift (admission order, purge order, shed policy) shows.
auto footprint(const serving::Report& r) {
  return std::make_tuple(
      r.completed, r.timed_out, r.retries, r.lost, r.shed, r.makespan,
      r.avg_latency_ms, r.p50_latency_ms, r.p95_latency_ms, r.p99_latency_ms,
      r.max_latency_ms, r.throughput_bps, r.goodput_bps, r.slo_violation_rate,
      r.generative.iterations, r.generative.tokens, r.generative.tokens_per_second,
      r.generative.ttft_ms_avg, r.generative.ttft_ms_p99, r.generative.tpot_ms_avg,
      r.generative.tpot_ms_p99, r.generative.decode_batch_avg,
      r.generative.padding_tokens, r.generative.preemptions, r.generative.recomputes,
      r.generative.swap_outs, r.generative.swap_ins, r.generative.fault_requeues,
      r.generative.swap_bytes, r.generative.kv_total_blocks,
      r.generative.kv_peak_used_blocks, r.generative.kv_block_bytes,
      r.generative.kv_peak_utilization, r.generative.kv_failed_allocs,
      r.plan_cache.hits, r.plan_cache.misses, r.plan_cache.evictions);
}

// --- Tentpole: fail-stop mid-decode under continuous batching ------------

TEST(ContinuousChaosTest, FailStopMidDecodeRecoversAndAccountsEveryRequest) {
  const int kRequests = 16;
  auto cfg = chaos_config(kRequests, /*seed=*/7);
  const auto healthy = serving::run_experiment(cfg);
  ASSERT_EQ(healthy.completed, static_cast<std::size_t>(kRequests));
  arm_fault(cfg, fail_stop_at(healthy.makespan / 2, /*device=*/2));

  const auto out = serving::run_experiment_detailed(cfg);
  EXPECT_EQ(out.failover.failovers, 1);
  // None lost: every request either completed or was explicitly shed.
  EXPECT_EQ(out.report.completed + out.report.shed,
            static_cast<std::size_t>(kRequests));
  EXPECT_EQ(out.report.lost, out.report.shed);
  EXPECT_GT(out.report.completed, 0u);
  EXPECT_GT(out.report.goodput_bps, 0.0);
  // The fault landed on a busy scheduler: someone's KV was purged.
  EXPECT_GT(out.report.generative.fault_requeues + out.report.shed, 0u);
  EXPECT_GE(out.failover.requests_dropped, 0u);
  // The pool was rebuilt for the survivor shard: 12 heads over 3
  // devices hold more per block than over 4.
  EXPECT_GT(out.report.generative.kv_block_bytes,
            healthy.generative.kv_block_bytes);
  // The outage can only cost time against the healthy run.
  EXPECT_GE(out.report.makespan, healthy.makespan);
  EXPECT_EQ(out.completion_times.size(), out.report.completed);
}

TEST(ContinuousChaosTest, ExhaustedRetryBudgetShedsTheDamagedCohort) {
  const int kRequests = 12;
  auto cfg = chaos_config(kRequests, /*seed=*/7);
  cfg.workload.max_retries = 0;  // first fault drop already exceeds it
  // Late in the run: part of the workload has already completed, the
  // rest is mid-decode when the device dies.
  arm_fault(cfg, fail_stop_at(3 * healthy_midpoint(cfg) / 2, /*device=*/1));

  const auto out = serving::run_experiment_detailed(cfg);
  EXPECT_EQ(out.failover.failovers, 1);
  EXPECT_EQ(out.report.completed + out.report.shed,
            static_cast<std::size_t>(kRequests));
  // The whole damaged cohort was shed rather than re-queued...
  EXPECT_GT(out.report.shed, 0u);
  EXPECT_EQ(out.report.generative.fault_requeues, 0u);
  // ...while the work that beat the fault kept its completions.
  EXPECT_GT(out.report.completed, 0u);
}

TEST(ContinuousChaosTest, RoundsModeFailStopRecoversToo) {
  const int kRequests = 12;
  auto cfg = chaos_config(kRequests, /*seed=*/7, serving::BatchingMode::kRounds);
  arm_fault(cfg, fail_stop_at(healthy_midpoint(cfg), /*device=*/3));

  const auto out = serving::run_experiment_detailed(cfg);
  EXPECT_EQ(out.failover.failovers, 1);
  EXPECT_EQ(out.report.completed + out.report.shed,
            static_cast<std::size_t>(kRequests));
  EXPECT_EQ(out.report.lost, out.report.shed);
  EXPECT_GT(out.report.goodput_bps, 0.0);
}

// --- Satellite: lone-group livelock guard under the purge window ----------

TEST(ContinuousChaosTest, LoneGroupDoesNotSelfPreemptWhilePurgePends) {
  // One-sequence groups with long generations against a pool floored at
  // a single max-context group, swap preemption, and a fail-stop on the
  // 2-device node (survivor TP = 1). Between the iteration drop and the
  // purge the books still show dead-generation KV as held; a regression
  // in the guard makes the lone decodable group preempt itself forever
  // and this test hangs instead of completing.
  const int kRequests = 4;
  auto cfg = chaos_config(kRequests, /*seed=*/7);
  cfg.node = gpu::NodeSpec::test_node(2);
  cfg.workload.batch_size = 1;
  cfg.workload.seq_min = 16;
  cfg.workload.seq_max = 16;
  cfg.workload.decode_tokens_min = 40;
  cfg.workload.decode_tokens_max = 40;
  cfg.continuous.kv_pool_bytes = 1;  // floored to one max-context group
  cfg.continuous.preemption = serving::PreemptionPolicy::kSwap;
  cfg.rate = 2000.0;
  const auto healthy = serving::run_experiment(cfg);
  ASSERT_GT(healthy.generative.preemptions, 0u) << "pressure config lost its bite";
  arm_fault(cfg, fail_stop_at(healthy.makespan / 2, /*device=*/1));

  const auto out = serving::run_experiment_detailed(cfg);
  EXPECT_EQ(out.failover.failovers, 1);
  EXPECT_EQ(out.report.completed + out.report.shed,
            static_cast<std::size_t>(kRequests));
  EXPECT_EQ(out.report.lost, out.report.shed);
}

// --- Satellite: chaos replay bit-identity ---------------------------------

TEST(ContinuousChaosTest, FailStopReplaysBitIdenticalAcrossSeedsAndThreads) {
  for (const std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{7}, std::uint64_t{11}}) {
    auto cfg = chaos_config(12, seed);
    arm_fault(cfg, fail_stop_at(healthy_midpoint(cfg), /*device=*/2));
    const auto serial = serving::run_experiment_detailed(cfg);
    EXPECT_EQ(serial.failover.failovers, 1) << "seed " << seed;
    for (const int threads : {2, 4}) {
      auto par_cfg = cfg;
      par_cfg.engine_threads = threads;
      const auto par = serving::run_experiment_detailed(par_cfg);
      EXPECT_EQ(footprint(serial.report), footprint(par.report))
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(serial.completion_times, par.completion_times)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(serial.failover.last_fault_detected, par.failover.last_fault_detected);
      EXPECT_EQ(serial.failover.last_recovered, par.failover.last_recovered);
      EXPECT_EQ(serial.failover.requests_dropped, par.failover.requests_dropped);
      EXPECT_EQ(serial.failover.requests_retracted, par.failover.requests_retracted);
    }
  }
}

TEST(ContinuousChaosTest, StragglerReplaysBitIdenticalAcrossSeedsAndThreads) {
  for (const std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{7}, std::uint64_t{11}}) {
    auto cfg = chaos_config(12, seed);
    const sim::SimTime mid = healthy_midpoint(cfg);
    arm_fault(cfg, straggler_at(mid, /*device=*/1, /*factor=*/0.4,
                                /*duration=*/mid));
    const auto serial = serving::run_experiment_detailed(cfg);
    EXPECT_EQ(serial.report.completed, 12u) << "seed " << seed;
    for (const int threads : {2, 4}) {
      auto par_cfg = cfg;
      par_cfg.engine_threads = threads;
      const auto par = serving::run_experiment_detailed(par_cfg);
      EXPECT_EQ(footprint(serial.report), footprint(par.report))
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(serial.completion_times, par.completion_times)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ContinuousChaosTest, LinkFlapReplaysBitIdenticalAcrossSeedsAndThreads) {
  // Link faults need a cluster fabric: 2 nodes x 2 devices, cluster-wide
  // TP over 4 ranks (12 heads divide evenly), flap on node 1's links.
  for (const std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{7}, std::uint64_t{11}}) {
    auto cfg = chaos_config(10, seed);
    cfg.node = gpu::NodeSpec::test_node(2);
    cfg.num_nodes = 2;
    const sim::SimTime mid = healthy_midpoint(cfg);
    const sim::SimTime period = std::max<sim::SimTime>(mid / 4, 2);
    arm_fault(cfg, link_flap_at(mid, /*node=*/1, /*factor=*/0.1,
                                /*duration=*/4 * period, period));
    const auto serial = serving::run_experiment_detailed(cfg);
    EXPECT_EQ(serial.report.completed, 10u) << "seed " << seed;
    for (const int threads : {2, 4}) {
      auto par_cfg = cfg;
      par_cfg.engine_threads = threads;
      const auto par = serving::run_experiment_detailed(par_cfg);
      EXPECT_EQ(footprint(serial.report), footprint(par.report))
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(serial.completion_times, par.completion_times)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ContinuousChaosTest, SameFaultPlanReplaysBitIdentical) {
  auto cfg = chaos_config(12, /*seed=*/7);
  arm_fault(cfg, fail_stop_at(healthy_midpoint(cfg), /*device=*/2));
  const auto a = serving::run_experiment_detailed(cfg);
  const auto b = serving::run_experiment_detailed(cfg);
  EXPECT_EQ(footprint(a.report), footprint(b.report));
  EXPECT_EQ(a.completion_times, b.completion_times);
  EXPECT_EQ(a.failover.last_fault_detected, b.failover.last_fault_detected);
  EXPECT_EQ(a.failover.requests_dropped, b.failover.requests_dropped);
}

TEST(ContinuousChaosTest, EmptyPlanIsBitIdenticalToFaultsDisabled) {
  // faults.enabled with an empty plan wires the full fault path (the
  // failover decorator, the scheduler's drop/failure hooks) but injects
  // nothing: the acceptance bar is a bit-identical Report against the
  // undecorated continuous path.
  const auto cfg = chaos_config(12, /*seed=*/7);
  auto wrapped_cfg = cfg;
  wrapped_cfg.faults.enabled = true;

  const auto plain = serving::run_experiment_detailed(cfg);
  const auto wrapped = serving::run_experiment_detailed(wrapped_cfg);
  EXPECT_EQ(wrapped.failover.failovers, 0);
  EXPECT_EQ(wrapped.report.shed, 0u);
  EXPECT_EQ(footprint(plain.report), footprint(wrapped.report));
  EXPECT_EQ(plain.completion_times, wrapped.completion_times);
}

// --- Satellite: per-fault-kind validation matrix ---------------------------

std::string rejection_message(const serving::ExperimentConfig& cfg) {
  try {
    serving::run_experiment(cfg);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(GenerativeFaultValidationTest, NonTensorParallelMethodIsRejected) {
  auto cfg = chaos_config(4, 7);
  cfg.method = serving::Method::kInterOp;
  EXPECT_EQ(rejection_message(cfg),
            "generative batching requires a tensor-parallel runtime "
            "(liger, liger-cpusync, or intra-op)");
}

TEST(GenerativeFaultValidationTest, FailStopUnderIntraOpIsRejectedPerKind) {
  auto cfg = chaos_config(4, 7);
  cfg.method = serving::Method::kIntraOp;
  arm_fault(cfg, fail_stop_at(sim::milliseconds(1), /*device=*/1));
  EXPECT_EQ(rejection_message(cfg),
            "fail-stop under generative batching requires a liger runtime "
            "(intra-op cannot rebuild a degraded tensor-parallel topology)");
}

TEST(GenerativeFaultValidationTest, FailStopOnClusterWideTpIsRejected) {
  auto cfg = chaos_config(4, 7);
  cfg.node = gpu::NodeSpec::test_node(2);
  cfg.num_nodes = 2;
  arm_fault(cfg, fail_stop_at(sim::milliseconds(1), /*device=*/1));
  EXPECT_EQ(rejection_message(cfg),
            "fail-stop recovery for cluster-wide TP groups is not supported; "
            "use hybrid (stage re-placement) or a single node");
}

TEST(GenerativeFaultValidationTest, StragglerUnderIntraOpIsAllowed) {
  // The per-kind split: only fail-stop needs topology rebuild support.
  // A straggler just slows iterations down and must pass validation
  // under every generative-capable method.
  auto cfg = chaos_config(6, 7);
  cfg.method = serving::Method::kIntraOp;
  const sim::SimTime mid = healthy_midpoint(cfg);
  arm_fault(cfg, straggler_at(mid, /*device=*/1, /*factor=*/0.5, mid));
  const auto out = serving::run_experiment_detailed(cfg);
  EXPECT_EQ(out.report.completed, 6u);
  EXPECT_EQ(out.failover.failovers, 0);
}

}  // namespace
}  // namespace liger::fault
