#include "fault/monitor.h"

#include <gtest/gtest.h>

#include "support/fixtures.h"

namespace liger::fault {
namespace {

using liger::testing::NodeFixture;

struct MonitorFixture : NodeFixture {
  DetectionConfig config;
  int detected_node = -1;
  int detected_device = -1;
  sim::SimTime detected_at = -1;
  HeartbeatMonitor monitor;

  MonitorFixture()
      : config{sim::microseconds(100), 3},
        monitor(engine, config, [this](int n, int d, sim::SimTime t) {
          detected_node = n;
          detected_device = d;
          detected_at = t;
          // Tests stop the heartbeat on detection so the engine drains.
          monitor.disarm();
        }) {
    monitor.watch(node.device(0), 0, 0);
    monitor.watch(node.device(1), 0, 1);
  }
};

TEST(HeartbeatMonitorTest, DeclaresDeathAfterThresholdMisses) {
  MonitorFixture f;
  f.monitor.arm();
  f.engine.schedule_at(sim::microseconds(50), [&f] { f.node.device(1).fail(); });
  f.engine.run();
  // Fault at 50us, ticks at 100/200/300us -> third consecutive miss.
  EXPECT_EQ(f.detected_at, sim::microseconds(300));
  EXPECT_EQ(f.detected_node, 0);
  EXPECT_EQ(f.detected_device, 1);
  EXPECT_EQ(f.monitor.failures_detected(), 1);
  const sim::SimTime latency = f.detected_at - sim::microseconds(50);
  EXPECT_LE(latency, f.config.max_detection_latency());
}

TEST(HeartbeatMonitorTest, HealthyDevicesNeverTripTheDetector) {
  MonitorFixture f;
  f.monitor.arm();
  f.engine.schedule_at(sim::milliseconds(1), [&f] { f.monitor.disarm(); });
  f.engine.run();
  EXPECT_EQ(f.monitor.failures_detected(), 0);
  EXPECT_EQ(f.detected_at, -1);
  // The heartbeat itself advanced time; disarm let the engine drain.
  EXPECT_EQ(f.engine.now(), sim::milliseconds(1));
}

TEST(HeartbeatMonitorTest, DisarmedMonitorSchedulesNothing) {
  MonitorFixture f;
  f.monitor.arm();
  f.monitor.disarm();
  f.engine.run();
  EXPECT_EQ(f.engine.now(), 0);  // the pending tick was cancelled
  EXPECT_FALSE(f.monitor.armed());
}

TEST(HeartbeatMonitorTest, IdleGapsDoNotAccumulateMisses) {
  MonitorFixture f;
  f.node.device(0).fail();  // already dead, but the system is about to go idle
  f.monitor.arm();
  // Two misses land (100us, 200us), then the workload drains and the
  // failover layer disarms before the third.
  f.engine.schedule_at(sim::microseconds(250), [&f] { f.monitor.disarm(); });
  // Re-armed much later: the count restarts, so detection needs three
  // fresh consecutive misses from the new arm point.
  f.engine.schedule_at(sim::milliseconds(1), [&f] { f.monitor.arm(); });
  f.engine.run();
  EXPECT_EQ(f.detected_at, sim::milliseconds(1) + 3 * sim::microseconds(100));
  EXPECT_EQ(f.detected_device, 0);
}

}  // namespace
}  // namespace liger::fault
