#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/json.h"

namespace liger::fault {
namespace {

FaultEvent event(FaultKind kind, sim::SimTime t, int node = 0, int device = 0) {
  FaultEvent ev;
  ev.kind = kind;
  ev.time = t;
  ev.node = node;
  ev.device = device;
  return ev;
}

TEST(FaultPlanTest, DescribeAndKindNames) {
  auto ev = event(FaultKind::kDeviceFailStop, sim::milliseconds(50), 0, 2);
  EXPECT_EQ(ev.describe().substr(0, 15), "fail_stop(n0.g2");
  EXPECT_STREQ(fault_kind_name(FaultKind::kStraggler), "straggler");
  EXPECT_STREQ(fault_kind_name(FaultKind::kLinkDegrade), "link_degrade");
  // Link faults are node-scoped: no device in the label.
  auto link = event(FaultKind::kLinkDegrade, 0, 1);
  EXPECT_EQ(link.describe().substr(0, 16), "link_degrade(n1)");
}

TEST(FaultPlanTest, HasFailStop) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.has_fail_stop());
  auto straggler = event(FaultKind::kStraggler, 0);
  straggler.factor = 0.5;
  straggler.duration = sim::milliseconds(1);
  plan.events.push_back(straggler);
  EXPECT_FALSE(plan.has_fail_stop());
  plan.events.push_back(event(FaultKind::kDeviceFailStop, 0));
  EXPECT_TRUE(plan.has_fail_stop());
}

TEST(FaultPlanTest, ValidateAcceptsWellFormedPlan) {
  FaultPlan plan;
  plan.events.push_back(event(FaultKind::kDeviceFailStop, sim::milliseconds(5), 1, 3));
  auto straggler = event(FaultKind::kStraggler, sim::milliseconds(1), 0, 0);
  straggler.factor = 0.4;
  straggler.duration = sim::milliseconds(2);
  plan.events.push_back(straggler);
  auto flap = event(FaultKind::kLinkFlap, sim::milliseconds(2), 1);
  flap.factor = 0.1;
  flap.period = sim::milliseconds(4);
  flap.duration = sim::milliseconds(8);
  plan.events.push_back(flap);
  EXPECT_NO_THROW(plan.validate(/*num_nodes=*/2, /*devices_per_node=*/4));
}

TEST(FaultPlanTest, ValidateRejectsOutOfRangeTargets) {
  FaultPlan plan;
  plan.events.push_back(event(FaultKind::kDeviceFailStop, 0, /*node=*/2, 0));
  EXPECT_THROW(plan.validate(2, 4), std::invalid_argument);
  plan.events[0] = event(FaultKind::kDeviceFailStop, 0, 0, /*device=*/4);
  EXPECT_THROW(plan.validate(2, 4), std::invalid_argument);
  plan.events[0] = event(FaultKind::kDeviceFailStop, -sim::milliseconds(1));
  EXPECT_THROW(plan.validate(2, 4), std::invalid_argument);
}

TEST(FaultPlanTest, ValidateRejectsBadParameters) {
  const auto reject = [](FaultEvent ev) {
    FaultPlan plan;
    plan.events.push_back(ev);
    EXPECT_THROW(plan.validate(2, 4), std::invalid_argument) << ev.describe();
  };

  auto straggler = event(FaultKind::kStraggler, 0);
  straggler.factor = 1.0;  // must be < 1
  straggler.duration = sim::milliseconds(1);
  reject(straggler);
  straggler.factor = 0.5;
  straggler.duration = 0;  // transient faults need a window
  reject(straggler);

  auto degrade = event(FaultKind::kLinkDegrade, 0, 1);
  degrade.factor = 0.0;  // (0, 1]
  reject(degrade);

  auto flap = event(FaultKind::kLinkFlap, 0, 1);
  flap.factor = 0.1;
  flap.period = 0;  // needs a positive period
  flap.duration = sim::milliseconds(8);
  reject(flap);
  flap.period = sim::milliseconds(4);
  flap.duration = sim::milliseconds(2);  // must cover >= one period
  reject(flap);

  auto stall = event(FaultKind::kHostStall, 0);
  stall.duration = 0;
  reject(stall);
}

TEST(FaultPlanTest, ParsesFullConfigFromJson) {
  const auto cfg = fault_config_from_json(util::parse_json(R"({
    "plan": [
      {"kind": "fail_stop", "t_ms": 50.0, "node": 0, "device": 2},
      {"kind": "straggler", "t_ms": 10.0, "node": 1, "device": 1,
       "factor": 0.4, "duration_ms": 20.0},
      {"kind": "link_flap", "t_ms": 5.0, "node": 1, "factor": 0.1,
       "duration_ms": 40.0, "period_ms": 4.0}
    ],
    "detection": {"heartbeat_interval_us": 250, "miss_threshold": 5},
    "recovery": {"replan_ms": 8.0}
  })"));
  // A present "faults" section is enabled unless it opts out.
  EXPECT_TRUE(cfg.enabled);
  ASSERT_EQ(cfg.plan.events.size(), 3u);
  EXPECT_EQ(cfg.plan.events[0].kind, FaultKind::kDeviceFailStop);
  EXPECT_EQ(cfg.plan.events[0].time, sim::milliseconds(50));
  EXPECT_EQ(cfg.plan.events[0].device, 2);
  EXPECT_EQ(cfg.plan.events[1].kind, FaultKind::kStraggler);
  EXPECT_DOUBLE_EQ(cfg.plan.events[1].factor, 0.4);
  EXPECT_EQ(cfg.plan.events[1].duration, sim::milliseconds(20));
  EXPECT_EQ(cfg.plan.events[2].period, sim::milliseconds(4));
  EXPECT_EQ(cfg.detection.heartbeat_interval, sim::microseconds(250));
  EXPECT_EQ(cfg.detection.miss_threshold, 5);
  EXPECT_EQ(cfg.detection.max_detection_latency(), sim::microseconds(1250));
  EXPECT_EQ(cfg.replan_latency, sim::milliseconds(8));
}

TEST(FaultPlanTest, JsonDefaultsAndExplicitDisable) {
  const auto cfg = fault_config_from_json(util::parse_json(R"({"enabled": false})"));
  EXPECT_FALSE(cfg.enabled);
  EXPECT_TRUE(cfg.plan.empty());
  EXPECT_EQ(cfg.detection.heartbeat_interval, sim::microseconds(500));
  EXPECT_EQ(cfg.detection.miss_threshold, 3);
  EXPECT_EQ(cfg.replan_latency, sim::milliseconds(5));
}

TEST(FaultPlanTest, JsonRejectsUnknownKindAndBadDetection) {
  EXPECT_THROW(fault_event_from_json(util::parse_json(R"({"kind": "meteor"})")),
               std::invalid_argument);
  EXPECT_THROW(fault_config_from_json(util::parse_json(
                   R"({"detection": {"miss_threshold": 0}})")),
               std::invalid_argument);
  EXPECT_THROW(fault_config_from_json(util::parse_json(
                   R"({"recovery": {"replan_ms": -1.0}})")),
               std::invalid_argument);
}

}  // namespace
}  // namespace liger::fault
