// Fig 11 reproduction: generative task (incremental sampling phase).
//
// One decoding iteration per request with the KV cache: batch 32,
// starting sequence length 16 (§4.3). The lower computational
// intensity of decode leaves less communication to hide, so Liger's
// gains are present but weaker: paper reports up to 1.08x / 1.29x /
// 1.23x / 1.13x throughput vs Intra-Op across the four evaluations
// (OPT-30B V100; OPT-30B, OPT-66B, GLM-130B on A100).
//
// Flags: --requests N (default 300)

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "model/model_spec.h"
#include "serving/experiment.h"
#include "util/flags.h"

namespace {

using namespace liger;
using serving::Method;

void run_eval(const char* label, const gpu::NodeSpec& node, const model::ModelSpec& model,
              int requests, double paper_gain) {
  bench::print_subheader(label);
  const auto rates = bench::rate_sweep(node, model, /*batch=*/32, /*mean_seq=*/16,
                                       model::Phase::kDecode);
  const auto methods = serving::all_methods();
  bench::print_panel_header(methods);

  std::map<Method, double> best_thr;
  for (double rate : rates) {
    std::vector<bench::PanelCell> cells;
    for (Method m : methods) {
      serving::ExperimentConfig cfg;
      cfg.node = node;
      cfg.model = model;
      cfg.method = m;
      cfg.rate = rate;
      cfg.workload.num_requests = requests;
      cfg.workload.batch_size = 32;
      cfg.workload.seq_min = 16;
      cfg.workload.seq_max = 16;
      cfg.workload.phase = model::Phase::kDecode;
      const auto rep = serving::run_experiment(cfg);
      best_thr[m] = std::max(best_thr[m], rep.throughput_bps);
      cells.push_back({rep.avg_latency_ms, rep.throughput_bps, rep.saturated()});
    }
    bench::print_panel_row(rate, cells);
  }
  std::printf("throughput gain vs Intra-Op: %.2fx (paper: up to %.2fx)\n",
              best_thr[Method::kLiger] / best_thr[Method::kIntraOp], paper_gain);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int requests = static_cast<int>(flags.get_int("requests", 200));

  bench::print_header(
      "Fig 11: generative (incremental sampling) task, batch 32, KV cache, seq 16");
  run_eval("(a) OPT-30B on V100/NVLink", gpu::NodeSpec::v100_nvlink(),
           model::ModelZoo::opt_30b(), requests, 1.08);
  run_eval("(b) OPT-30B on A100/PCIe", gpu::NodeSpec::a100_pcie(),
           model::ModelZoo::opt_30b(), requests, 1.29);
  run_eval("(c) OPT-66B on A100/PCIe", gpu::NodeSpec::a100_pcie(),
           model::ModelZoo::opt_66b(), requests, 1.23);
  run_eval("(d) GLM-130B on A100/PCIe", gpu::NodeSpec::a100_pcie(),
           model::ModelZoo::glm_130b(), requests, 1.13);
  return 0;
}
