// Fig 15 (extension): multi-node hybrid-parallel scaling.
//
// Serves OPT-30B from clusters of 1, 2 and 4 V100 nodes joined by HDR
// InfiniBand. Two cluster-wide strategies compete:
//  * Hybrid  — Liger interleaved TP inside each node (tp = 4), one
//    pipeline stage per node; boundary activations cross the fabric.
//  * Cluster-TP — Liger over all devices with hierarchical collectives
//    (intra-node ring reduce-scatter -> inter-node exchange ->
//    intra-node all-gather); every all-reduce pays the fabric.
// The offered rate scales with the node count, so the table reads as a
// strong-scaling sweep of sustained throughput.
//
// A second section runs a traced 2-node hybrid experiment and reports
// fabric occupancy: concurrent pipeline p2p streams visibly contend for
// the endpoint NICs (args.bytes on each fabric row; device=-1 rows in
// the Chrome trace).
//
// Flags: --requests N (default 100), --trace PATH (write Chrome JSON),
// --engine-threads N (default 1: serial engine; > 1 partitions the
// simulation into engine domains — hybrid runs get one domain per node
// plus the fabric/host domain, cluster-wide TP runs a fused host+world
// partition — results are bit-identical at any count, see
// sim/parallel_engine.h), --speculation N (default 0: optimistic
// execution budget for checkpointable domains; results stay
// bit-identical at any setting — the runtime's coroutine-backed cell
// domains decline the hooks, so this run reports the counters to show
// they are wired, not to show a win)

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/hybrid_runtime.h"
#include "gpu/cluster.h"
#include "model/model_spec.h"
#include "serving/experiment.h"
#include "sim/engine.h"
#include "trace/chrome_trace.h"
#include "util/flags.h"

namespace {
using namespace liger;
using serving::Method;
}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int requests = static_cast<int>(flags.get_int("requests", 100));
  const std::string trace_path = flags.get_string("trace", "");
  const int engine_threads = static_cast<int>(flags.get_int("engine-threads", 1));
  const auto speculation =
      static_cast<std::uint64_t>(flags.get_int("speculation", 0));

  const auto node = gpu::NodeSpec::v100_nvlink(4);
  const auto model = model::ModelZoo::opt_30b();
  const int batch = 2;
  const int mean_seq = 72;

  // Per-node intra-op saturation anchors the offered rate; 1.2x keeps
  // every configuration saturated so throughput == sustained capacity.
  const sim::SimTime unit = serving::isolated_intra_batch_time(
      node, model, batch, mean_seq, model::Phase::kPrefill);
  const double base_rate = 1.2 / sim::to_seconds(unit);

  bench::print_header(
      "Fig 15: multi-node hybrid scaling (OPT-30B, 4xV100 nodes, IB-HDR, batch 2; " +
      std::to_string(requests) + " requests/point" +
      (engine_threads > 1
           ? ", partitioned engine x" + std::to_string(engine_threads) + " threads"
           : "") +
      ")");
  std::printf("%6s | %22s | %26s | %8s\n", "nodes", "Hybrid tp4 x pp=N", "Cluster-TP (hierarchical)",
              "speedup");
  std::printf("%6s | %10s %11s | %14s %11s | %8s\n", "", "lat(ms)", "thr(b/s)", "lat(ms)",
              "thr(b/s)", "hybrid");

  double hybrid_thr_1node = 0.0;
  for (int nodes : {1, 2, 4}) {
    serving::ExperimentConfig cfg;
    cfg.node = node;
    cfg.model = model;
    cfg.rate = base_rate * nodes;
    cfg.workload.num_requests = requests;
    cfg.workload.batch_size = batch;
    cfg.num_nodes = nodes;
    cfg.fabric = interconnect::FabricSpec::ib_hdr();

    cfg.method = Method::kHybrid;  // tp = devices/node, pp = nodes (defaults)
    cfg.engine_threads = engine_threads;
    cfg.speculation = speculation;
    const auto hybrid = serving::run_experiment(cfg);

    cfg.method = Method::kLiger;  // whole-cluster tensor parallelism
    const auto tp = serving::run_experiment(cfg);  // fused host+world partition

    if (nodes == 1) hybrid_thr_1node = hybrid.throughput_bps;
    std::printf("%6d | %10.2f %10.3f%s | %14.2f %10.3f%s | %7.2fx\n", nodes,
                hybrid.avg_latency_ms, hybrid.throughput_bps,
                hybrid.saturated() ? "*" : " ", tp.avg_latency_ms, tp.throughput_bps,
                tp.saturated() ? "*" : " ",
                hybrid_thr_1node > 0 ? hybrid.throughput_bps / hybrid_thr_1node : 1.0);
    if (hybrid.engine.partitioned) {
      std::printf("%6s | engine: %llu windows, %.1f events/window, speculated %llu "
                  "(committed %llu, rolled back %llu)\n",
                  "", static_cast<unsigned long long>(hybrid.engine.windows),
                  hybrid.engine.events_per_window,
                  static_cast<unsigned long long>(hybrid.engine.speculated),
                  static_cast<unsigned long long>(hybrid.engine.committed),
                  static_cast<unsigned long long>(hybrid.engine.rolled_back));
    }
  }

  // --- Fabric contention, made visible ---------------------------------
  bench::print_subheader("fabric occupancy, 2-node hybrid (traced run)");
  {
    sim::Engine engine;
    gpu::Cluster cluster(engine, gpu::ClusterSpec::v100_ib(2, 4));
    trace::ChromeTraceSink sink;
    cluster.set_trace_sink(&sink);

    core::HybridRuntime runtime(cluster, model);
    int completed = 0;
    runtime.set_completion_hook(
        [&](const model::BatchRequest&, sim::SimTime) { ++completed; });
    const int traced = std::min(requests, 32);
    for (int i = 0; i < traced; ++i) {
      model::BatchRequest req;
      req.id = i;
      req.batch_size = batch;
      req.seq = mean_seq;
      runtime.submit(req);
    }
    engine.run();

    const double span = static_cast<double>(engine.now());
    const double fabric_busy = static_cast<double>(sink.fabric_busy_time());
    std::printf("batches %d/%d | makespan %.2f ms | fabric busy %.2f ms (%.1f%%) | "
                "fabric transfers %llu (%.1f MiB)\n",
                completed, traced, span / 1e6, fabric_busy / 1e6,
                span > 0 ? 100.0 * fabric_busy / span : 0.0,
                static_cast<unsigned long long>(runtime.stats().fabric_transfers),
                static_cast<double>(runtime.stats().fabric_bytes) / (1 << 20));

    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      sink.write_json(out);
      std::printf("trace written to %s (fabric rows: pid=-1)\n", trace_path.c_str());
    }
  }

  std::printf("\nHybrid keeps tensor-parallel collectives on NVLink and only ships\n"
              "boundary activations across the fabric, so throughput scales with the\n"
              "node count; cluster-wide TP pays the fabric on every all-reduce.\n");
  return 0;
}
