// Fig 4 reproduction: the widely-varied kernel duration problem.
//
// (a) Normalized kernel durations across model sizes (6.7B - 175B on
//     V100): as models grow, a few kernels take up most of the time
//     (variance increases).
// (b) Normalized durations of the same kernels across input sizes.
//
// We print, per model, each layer kernel's share of the layer time and
// the coefficient of variation; then per input size for OPT-30B.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/cost_model.h"
#include "model/layer_builder.h"
#include "model/model_spec.h"
#include "util/stats.h"

namespace {

using namespace liger;

struct KernelRow {
  std::string name;
  double ms;
};

std::vector<KernelRow> layer_kernels(const model::ModelSpec& spec, int batch, int seq) {
  const model::CostModel cost(gpu::GpuSpec::v100());
  const model::LayerBuilder builder(spec, cost);
  model::ExecConfig cfg;
  cfg.batch = batch;
  cfg.seq = seq;
  cfg.tp = 1;
  std::vector<KernelRow> rows;
  for (const auto& op : builder.layer_ops(cfg)) {
    rows.push_back({op.kernel.name, sim::to_ms(op.kernel.solo_duration)});
  }
  return rows;
}

void print_distribution(const std::vector<KernelRow>& rows) {
  double max_ms = 0;
  util::OnlineStats stats;
  for (const auto& r : rows) {
    max_ms = std::max(max_ms, r.ms);
    stats.add(r.ms);
  }
  std::printf("  %-14s %10s %12s\n", "kernel", "ms", "normalized");
  for (const auto& r : rows) {
    std::printf("  %-14s %10.3f %12.3f\n", r.name.c_str(), r.ms, r.ms / max_ms);
  }
  std::printf("  coefficient of variation: %.2f  (top kernel holds %.0f%% of layer time)\n",
              stats.stddev() / stats.mean(), 100.0 * max_ms / stats.sum());
}

}  // namespace

int main() {
  bench::print_header("Fig 4(a): kernel durations across model sizes (V100, batch 2, seq 64)");
  for (const char* name : {"opt-6.7b", "opt-13b", "opt-30b", "opt-66b", "opt-175b"}) {
    const auto spec = model::ModelZoo::by_name(name);
    bench::print_subheader(spec.name + " (" +
                           std::to_string(spec.param_count() / 1000000000ull) + "B params)");
    print_distribution(layer_kernels(spec, 2, 64));
  }

  bench::print_header("Fig 4(b): kernel durations across input sizes (OPT-30B, V100)");
  for (int seq : {16, 32, 64, 128}) {
    for (int batch : {2, 8}) {
      bench::print_subheader("batch " + std::to_string(batch) + ", seq " +
                             std::to_string(seq));
      print_distribution(layer_kernels(model::ModelZoo::opt_30b(), batch, seq));
    }
  }
  std::printf("\nPaper's observation: larger models and larger inputs concentrate time in\n"
              "few kernels, so exact compute/comm duration matches are rare (-> runtime\n"
              "kernel decomposition, paper section 3.6).\n");
  return 0;
}
