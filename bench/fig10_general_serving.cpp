// Fig 10 reproduction: latency and throughput vs. arrival rate with
// randomly generated traces (seq 16-128), across models, nodes and
// batch sizes, for Liger and the Intra-Op / Inter-Op / Inter-Th
// baselines.
//
// Panels (paper layout):
//   (a,b,c)  OPT-30B  on 4xV100-NVLink, batch 2/4/8
//   (d,e,f)  OPT-30B  on 4xA100-PCIe,  batch 2/4/8
//   (g,h,i)  OPT-66B  on 4xA100-PCIe,  batch 2/4/8
//   (j,k,l)  GLM-130B on 4xA100-PCIe,  batch 2/4/8
//
// A '*' marks saturated points (achieved throughput < offered rate).
// Paper headline (4 devices): Liger reduces average latency by 36.0%
// vs Inter-Op at equal throughput and reaches 1.34x the throughput of
// Intra-Op with better latency.
//
// Flags: --requests N (default 300; paper uses 2000), --panels a,b,...
//        --rates r1,r2,... (override the sweep, batches/s)

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "model/model_spec.h"
#include "serving/experiment.h"
#include "util/flags.h"

namespace {

using namespace liger;
using serving::Method;

struct Panel {
  char tag;
  gpu::NodeSpec node;
  model::ModelSpec model;
  int batch;
};

struct PanelResult {
  // rate -> method -> report
  std::vector<double> rates;
  std::map<Method, std::vector<serving::Report>> reports;
};

PanelResult run_panel(const Panel& panel, int requests, std::vector<double> rates) {
  PanelResult result;
  if (rates.empty()) {
    rates = bench::rate_sweep(panel.node, panel.model, panel.batch, /*mean_seq=*/72,
                              model::Phase::kPrefill);
  }
  result.rates = rates;
  for (Method m : serving::all_methods()) {
    for (double rate : rates) {
      serving::ExperimentConfig cfg;
      cfg.node = panel.node;
      cfg.model = panel.model;
      cfg.method = m;
      cfg.rate = rate;
      cfg.workload.num_requests = requests;
      cfg.workload.batch_size = panel.batch;
      result.reports[m].push_back(serving::run_experiment(cfg));
    }
  }
  return result;
}

void print_panel(const Panel& panel, const PanelResult& r) {
  std::ostringstream title;
  title << "(" << panel.tag << ") " << panel.model.name << " on " << panel.node.name
        << ", batch " << panel.batch;
  bench::print_subheader(title.str());
  const auto methods = serving::all_methods();
  bench::print_panel_header(methods);
  for (std::size_t i = 0; i < r.rates.size(); ++i) {
    std::vector<bench::PanelCell> cells;
    for (Method m : methods) {
      const auto& rep = r.reports.at(m)[i];
      cells.push_back({rep.avg_latency_ms, rep.throughput_bps, rep.saturated()});
    }
    bench::print_panel_row(r.rates[i], cells);
  }
}

// Headline aggregates in the paper's terms.
void print_summary(const std::vector<std::pair<Panel, PanelResult>>& panels) {
  bench::print_subheader("Summary vs paper headline");
  double thr_gain_sum = 0, lat_red_inter_sum = 0, lat_red_interth_sum = 0;
  int thr_n = 0, lat_n = 0;
  for (const auto& [panel, r] : panels) {
    // Max unsaturated throughput per method.
    auto max_thr = [&](Method m) {
      double best = 0;
      for (const auto& rep : r.reports.at(m)) best = std::max(best, rep.throughput_bps);
      return best;
    };
    const double liger_thr = max_thr(Method::kLiger);
    const double intra_thr = max_thr(Method::kIntraOp);
    if (intra_thr > 0) {
      thr_gain_sum += liger_thr / intra_thr;
      ++thr_n;
    }
    // Latency reduction vs Inter-Op / Inter-Th at rates below Liger
    // saturation.
    double sum_inter = 0, sum_interth = 0;
    int n = 0;
    for (std::size_t i = 0; i < r.rates.size(); ++i) {
      const auto& liger = r.reports.at(Method::kLiger)[i];
      if (liger.saturated()) continue;
      const auto& inter = r.reports.at(Method::kInterOp)[i];
      const auto& interth = r.reports.at(Method::kInterTh)[i];
      sum_inter += 1.0 - liger.avg_latency_ms / inter.avg_latency_ms;
      sum_interth += 1.0 - liger.avg_latency_ms / interth.avg_latency_ms;
      ++n;
    }
    if (n > 0) {
      lat_red_inter_sum += sum_inter / n;
      lat_red_interth_sum += sum_interth / n;
      ++lat_n;
    }
  }
  if (thr_n > 0) {
    std::printf("Avg throughput gain vs Intra-Op : %.2fx  (paper: 1.15x V100, 1.52x A100; "
                "headline 1.34x)\n",
                thr_gain_sum / thr_n);
  }
  if (lat_n > 0) {
    std::printf("Avg latency reduction vs Inter-Op : %.1f%%  (paper: 45.4%% V100, 35.8%% "
                "A100; headline 36.0%%)\n",
                100.0 * lat_red_inter_sum / lat_n);
    std::printf("Avg latency reduction vs Inter-Th : %.1f%%  (paper: 59.1%% V100, 42.2%% "
                "A100)\n",
                100.0 * lat_red_interth_sum / lat_n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int requests = static_cast<int>(flags.get_int("requests", 200));
  const std::string panel_filter = flags.get_string("panels", "");
  const std::string rates_flag = flags.get_string("rates", "");

  std::vector<double> rates_override;
  if (!rates_flag.empty()) {
    std::stringstream ss(rates_flag);
    std::string tok;
    while (std::getline(ss, tok, ',')) rates_override.push_back(std::stod(tok));
  }

  const auto v100 = gpu::NodeSpec::v100_nvlink(4);
  const auto a100 = gpu::NodeSpec::a100_pcie(4);
  std::vector<Panel> panels;
  char tag = 'a';
  for (int batch : {2, 4, 8}) panels.push_back({tag++, v100, model::ModelZoo::opt_30b(), batch});
  for (int batch : {2, 4, 8}) panels.push_back({tag++, a100, model::ModelZoo::opt_30b(), batch});
  for (int batch : {2, 4, 8}) panels.push_back({tag++, a100, model::ModelZoo::opt_66b(), batch});
  for (int batch : {2, 4, 8}) panels.push_back({tag++, a100, model::ModelZoo::glm_130b(), batch});

  bench::print_header("Fig 10: general serving performance (" + std::to_string(requests) +
                      " requests/point; paper uses 2000)");
  std::printf("Table 1 models: ");
  for (const auto& name : {"opt-30b", "opt-66b", "glm-130b"}) {
    const auto spec = model::ModelZoo::by_name(name);
    std::printf("%s[%dL,%dH,%d] %.0fGB  ", spec.name.c_str(), spec.layers, spec.heads,
                spec.hidden, static_cast<double>(spec.param_bytes()) / 1e9);
  }
  std::printf("\n");

  std::vector<std::pair<Panel, PanelResult>> results;
  for (const auto& panel : panels) {
    if (!panel_filter.empty() && panel_filter.find(panel.tag) == std::string::npos) continue;
    PanelResult r = run_panel(panel, requests, rates_override);
    print_panel(panel, r);
    results.emplace_back(panel, std::move(r));
  }
  print_summary(results);
  return 0;
}
