// Multi-seed chaos sweep for the partitioned engine: replays serving
// workloads across many seeds and engine-thread counts and fails loudly
// on any divergence from the serial engine.
//
// Three scenario families per seed:
//  * fig10 — single-node Liger serving (host + node domains);
//  * fig15 — 2- and 4-node hybrid pipelines (fabric/host domain plus
//    one domain per node, cross-node lookahead = fabric base latency);
//  * fig16 — fault-injected runs (straggler + link degrade), executed
//    under the partitioned engine on a fused host + world partition —
//    the chaos replay must be bit-identical at every thread count.
// Every scenario runs at engine_threads 1, 2 and 4; all Report fields
// that the figure benches consume are compared bit-for-bit against the
// serial run. Exit status is the number of divergent rows.
//
// Flags: --seeds N (default 8), --requests N (default 20)
//
// This is the tier-2 companion to the tier-1
// tests/integration/parallel_equivalence_test.cpp: same oracle, far
// more seeds, registered as bench_parallel_equivalence_sweep in the
// scheduled CI job.

#include <cstdio>
#include <string>

#include "fault/fault_plan.h"
#include "model/model_spec.h"
#include "serving/experiment.h"
#include "util/flags.h"

namespace {

using namespace liger;

serving::ExperimentConfig fig10_config(std::uint64_t seed, int requests) {
  serving::ExperimentConfig cfg;
  cfg.node = gpu::NodeSpec::v100_nvlink(4);
  cfg.model = model::ModelZoo::opt_30b().with_layers(4);
  cfg.method = serving::Method::kLiger;
  cfg.rate = 40.0;
  cfg.poisson = true;
  cfg.workload.num_requests = requests;
  cfg.workload.batch_size = 2;
  cfg.workload.seed = seed;
  return cfg;
}

serving::ExperimentConfig fig15_config(std::uint64_t seed, int requests, int nodes) {
  serving::ExperimentConfig cfg = fig10_config(seed, requests);
  cfg.method = serving::Method::kHybrid;
  cfg.num_nodes = nodes;
  cfg.fabric = interconnect::FabricSpec::ib_hdr();
  cfg.rate = 30.0 * nodes;
  return cfg;
}

serving::ExperimentConfig fig16_config(std::uint64_t seed, int requests) {
  serving::ExperimentConfig cfg = fig10_config(seed, requests);
  cfg.rate = 30.0;
  cfg.faults.enabled = true;
  fault::FaultEvent straggler;
  straggler.kind = fault::FaultKind::kStraggler;
  straggler.time = sim::milliseconds(40);
  straggler.duration = sim::milliseconds(40);
  straggler.device = static_cast<int>(seed % 4);
  straggler.factor = 0.5;
  cfg.faults.plan.events.push_back(straggler);
  return cfg;
}

// Bit-level comparison of the fields every figure bench consumes.
int compare(const serving::Report& serial, const serving::Report& parallel,
            const std::string& label) {
  int diffs = 0;
  const auto check = [&](bool ok, const char* field) {
    if (!ok) {
      std::fprintf(stderr, "DIVERGED %s: %s\n", label.c_str(), field);
      ++diffs;
    }
  };
  check(serial.completed == parallel.completed, "completed");
  check(serial.makespan == parallel.makespan, "makespan");
  check(serial.avg_latency_ms == parallel.avg_latency_ms, "avg_latency_ms");
  check(serial.p50_latency_ms == parallel.p50_latency_ms, "p50_latency_ms");
  check(serial.p95_latency_ms == parallel.p95_latency_ms, "p95_latency_ms");
  check(serial.p99_latency_ms == parallel.p99_latency_ms, "p99_latency_ms");
  check(serial.max_latency_ms == parallel.max_latency_ms, "max_latency_ms");
  check(serial.throughput_bps == parallel.throughput_bps, "throughput_bps");
  check(serial.throughput_rps == parallel.throughput_rps, "throughput_rps");
  check(serial.timed_out == parallel.timed_out, "timed_out");
  check(serial.retries == parallel.retries, "retries");
  check(serial.lost == parallel.lost, "lost");
  check(serial.goodput_bps == parallel.goodput_bps, "goodput_bps");
  return diffs;
}

int sweep_scenario(const char* name, const serving::ExperimentConfig& base) {
  serving::ExperimentConfig cfg = base;
  cfg.engine_threads = 1;
  const serving::Report serial = serving::run_experiment(cfg);
  int diffs = 0;
  for (const int threads : {2, 4}) {
    cfg.engine_threads = threads;
    const serving::Report parallel = serving::run_experiment(cfg);
    diffs += compare(serial, parallel,
                     std::string(name) + " seed " + std::to_string(base.workload.seed) +
                         " threads " + std::to_string(threads));
  }
  return diffs;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 8));
  const int requests = static_cast<int>(flags.get_int("requests", 20));

  int diffs = 0;
  int rows = 0;
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(s) * 37;
    diffs += sweep_scenario("fig10", fig10_config(seed, requests));
    diffs += sweep_scenario("fig15/2n", fig15_config(seed, requests, 2));
    diffs += sweep_scenario("fig15/4n", fig15_config(seed, requests, 4));
    diffs += sweep_scenario("fig16", fig16_config(seed, requests));
    rows += 4;
    std::printf("seed %llu: 4 scenarios x {2,4} threads vs serial — %s\n",
                static_cast<unsigned long long>(seed), diffs == 0 ? "identical" : "DIVERGED");
  }
  std::printf("%d scenario rows, %d divergent fields\n", rows, diffs);
  return diffs == 0 ? 0 : 1;
}
