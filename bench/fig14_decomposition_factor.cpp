// Fig 14 reproduction: impact of the kernel decomposition factor
// (§4.6): Liger serving OPT-30B on the V100 node with batch 2 under
// division factors 2, 4, 8 and 16 (plus decomposition disabled, as an
// ablation beyond the paper).
//
// Paper: larger factors give finer granularity and better
// latency/throughput, with diminishing returns as pieces stop
// saturating the GPU.
//
// Flags: --requests N (default 200)

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/model_spec.h"
#include "serving/experiment.h"
#include "util/flags.h"

namespace {
using namespace liger;
}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int requests = static_cast<int>(flags.get_int("requests", 200));

  const auto node = gpu::NodeSpec::v100_nvlink(4);
  const auto model = model::ModelZoo::opt_30b();
  const auto rates = bench::rate_sweep(node, model, 2, 72, model::Phase::kPrefill,
                                       {0.6, 0.9, 1.05, 1.2, 1.4});

  bench::print_header(
      "Fig 14: decomposition factor sweep (OPT-30B, V100 node, batch 2)");
  std::printf("%10s |", "rate b/s");
  std::printf(" %-8s lat/thr |", "off");
  for (int factor : {2, 4, 8, 16}) std::printf(" factor=%-2d lat/thr |", factor);
  std::printf("\n");

  for (double rate : rates) {
    std::printf("%10.3f |", rate);
    for (int factor : {0, 2, 4, 8, 16}) {
      serving::ExperimentConfig cfg;
      cfg.node = node;
      cfg.model = model;
      cfg.method = serving::Method::kLiger;
      cfg.rate = rate;
      cfg.workload.num_requests = requests;
      cfg.workload.batch_size = 2;
      if (factor == 0) {
        cfg.liger.enable_decomposition = false;
      } else {
        cfg.liger.decomposition_factor = factor;
      }
      const auto rep = serving::run_experiment(cfg);
      std::printf(" %7.1f/%-8.3f%s|", rep.avg_latency_ms, rep.throughput_bps,
                  rep.saturated() ? "*" : " ");
    }
    std::printf("\n");
  }
  std::printf("\nPaper: larger decomposition factors improve both metrics; the benefit\n"
              "tapers off once pieces no longer saturate the GPU.\n");
  return 0;
}
