// Fig 12 reproduction: strong scaling of Liger serving OPT-30B on 1, 2
// and 4 A100 GPUs (§4.4).
//
// For each device count we sweep the arrival rate and report the
// low-rate latency and the peak sustained throughput per method. The
// paper's findings: Liger improves both latency and throughput with
// more GPUs, beats Intra-Op throughput and Inter-Op latency, and the
// 2-GPU effect is weaker (lower communication ratio).
//
// Flags: --requests N (default 200)

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "model/model_spec.h"
#include "serving/experiment.h"
#include "util/flags.h"

namespace {

using namespace liger;
using serving::Method;

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int requests = static_cast<int>(flags.get_int("requests", 200));
  const auto model = model::ModelZoo::opt_30b();

  bench::print_header("Fig 12: strong scaling, OPT-30B on 1/2/4 A100 GPUs");
  std::printf("%8s | %13s | %16s | %18s\n", "devices", "method", "low-rate lat(ms)",
              "peak thr (batch/s)");

  for (int devices : {1, 2, 4}) {
    const auto node = gpu::NodeSpec::a100_pcie(devices);
    const auto rates =
        bench::rate_sweep(node, model, 2, 72, model::Phase::kPrefill,
                          {0.3, 0.8, 1.05, 1.3, 1.6});
    for (Method m : serving::all_methods()) {
      double low_rate_latency = 0;
      double peak_thr = 0;
      for (std::size_t i = 0; i < rates.size(); ++i) {
        serving::ExperimentConfig cfg;
        cfg.node = node;
        cfg.model = model;
        cfg.method = m;
        cfg.rate = rates[i];
        cfg.workload.num_requests = requests;
        cfg.workload.batch_size = 2;
        const auto rep = serving::run_experiment(cfg);
        if (i == 0) low_rate_latency = rep.avg_latency_ms;
        peak_thr = std::max(peak_thr, rep.throughput_bps);
      }
      std::printf("%8d | %13s | %16.2f | %18.3f\n", devices, serving::method_name(m),
                  low_rate_latency, peak_thr);
    }
  }
  std::printf("\nPaper: Liger's latency and throughput improve with GPU count; the 2-GPU\n"
              "configuration benefits less (lower communication ratio).\n");
  return 0;
}
