// Ablations of Liger's design choices beyond the paper's figures
// (DESIGN.md "quality" extensions):
//
//  (1) Contention factor: none (1.0), profiled, and aggressive (1.3) —
//      §3.5 argues an unscaled scheduler lets the secondary subset
//      outlive the primary and hurt its latency.
//  (2) NCCL footprint: stock channel allocation vs Liger's tuned
//      NCCL_MAX_NCHANNELS=3 (§3.5's contention mitigation).
//  (3) Arrival process: constant (paper) vs Poisson (extension) — the
//      interleaving window survives bursty arrivals.
//
// Flags: --requests N (default 150)

#include <cstdio>

#include "bench_util.h"
#include "model/model_spec.h"
#include "serving/experiment.h"
#include "util/flags.h"

namespace {

using namespace liger;
using serving::Method;

serving::ExperimentConfig base_config(int requests, double rate) {
  serving::ExperimentConfig cfg;
  cfg.node = gpu::NodeSpec::v100_nvlink(4);
  cfg.model = model::ModelZoo::opt_30b();
  cfg.method = Method::kLiger;
  cfg.rate = rate;
  cfg.workload.num_requests = requests;
  cfg.workload.batch_size = 2;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int requests = static_cast<int>(flags.get_int("requests", 150));

  const auto node = gpu::NodeSpec::v100_nvlink(4);
  const auto model = model::ModelZoo::opt_30b();
  const double base_rate = 1.0 / sim::to_seconds(serving::isolated_intra_batch_time(
                                     node, model, 2, 72, model::Phase::kPrefill));

  bench::print_header("Ablation 1: contention factor (OPT-30B, V100, batch 2)");
  std::printf("%12s |", "rate b/s");
  for (const char* label : {"cf=1.0(off)", "cf=profiled", "cf=1.30"}) {
    std::printf(" %-12s lat/thr |", label);
  }
  std::printf("\n");
  for (double mult : {0.9, 1.05, 1.2}) {
    std::printf("%12.3f |", base_rate * mult);
    for (int variant = 0; variant < 3; ++variant) {
      auto cfg = base_config(requests, base_rate * mult);
      if (variant == 0) {
        cfg.profile_contention = false;
        cfg.liger.contention_factor = 1.0;
      } else if (variant == 2) {
        cfg.profile_contention = false;
        cfg.liger.contention_factor = 1.30;
      }
      const auto rep = serving::run_experiment(cfg);
      std::printf("  %10.2f/%-8.3f%s |", rep.avg_latency_ms, rep.throughput_bps,
                  rep.saturated() ? "*" : " ");
    }
    std::printf("\n");
  }

  bench::print_header("Ablation 2: NCCL footprint (stock channels vs tuned)");
  std::printf("%12s | %-14s lat/thr | %-14s lat/thr\n", "rate b/s", "stock(16ch)",
              "tuned(3ch)");
  for (double mult : {0.9, 1.05, 1.2}) {
    std::printf("%12.3f |", base_rate * mult);
    for (bool tuned : {false, true}) {
      auto cfg = base_config(requests, base_rate * mult);
      cfg.liger.comm = tuned ? collective::CommConfig::liger_tuned()
                             : collective::CommConfig::nccl_default();
      const auto rep = serving::run_experiment(cfg);
      std::printf("   %12.2f/%-8.3f%s |", rep.avg_latency_ms, rep.throughput_bps,
                  rep.saturated() ? "*" : " ");
    }
    std::printf("\n");
  }

  bench::print_header(
      "Ablation 2b: sequence parallelism (Megatron-SP extension; 2x finer comm ops)");
  std::printf("%12s | %-14s lat/thr | %-14s lat/thr\n", "rate b/s", "standard TP",
              "sequence-par");
  for (double mult : {0.9, 1.05, 1.2}) {
    std::printf("%12.3f |", base_rate * mult);
    for (bool sp : {false, true}) {
      auto cfg = base_config(requests, base_rate * mult);
      cfg.liger.sequence_parallel = sp;
      const auto rep = serving::run_experiment(cfg);
      std::printf("   %12.2f/%-8.3f%s |", rep.avg_latency_ms, rep.throughput_bps,
                  rep.saturated() ? "*" : " ");
    }
    std::printf("\n");
  }

  bench::print_header("Ablation 3: constant vs Poisson arrivals");
  std::printf("%12s | %-14s lat/thr | %-14s lat/thr\n", "rate b/s", "constant",
              "poisson");
  for (double mult : {0.6, 0.9, 1.05}) {
    std::printf("%12.3f |", base_rate * mult);
    for (bool poisson : {false, true}) {
      auto cfg = base_config(requests, base_rate * mult);
      cfg.poisson = poisson;
      const auto rep = serving::run_experiment(cfg);
      std::printf("   %12.2f/%-8.3f%s |", rep.avg_latency_ms, rep.throughput_bps,
                  rep.saturated() ? "*" : " ");
    }
    std::printf("\n");
  }
  std::printf("\nFindings: the tuned NCCL footprint frees SMs for overlap; an aggressive\n"
              "contention factor costs throughput while none at all mildly risks\n"
              "Principle 1; sequence parallelism does NOT help Liger here — runtime\n"
              "decomposition already provides granularity, so SP's extra per-op\n"
              "latencies (4 collectives/layer instead of 2) dominate; Poisson arrivals\n"
              "raise queueing latency but preserve the interleaving gains.\n");
  return 0;
}
