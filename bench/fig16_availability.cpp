// Fig 16 (extension): availability under deterministic fault injection.
//
// Serves OPT-30B with Liger on a 4xV100 node at a sub-saturation rate,
// then kills one device mid-stream (fail-stop). The failover stack
// detects the failure by missed heartbeats, drops the in-flight
// batches back to the server (which retries with exponential backoff),
// and rebuilds the runtime as a 3-wide TP group after a modelled
// replanning latency. The bench reports
//  * the goodput timeline around the outage (the dip and the ramp
//    back), bucketed over the makespan,
//  * detection latency (fault -> heartbeat verdict) and recovery
//    latency (verdict -> survivor topology live),
//  * SLO violations, retries and lost requests vs the healthy run.
//
// A --seeds N chaos sweep replays the scenario across workload seeds
// and fault times (both derived deterministically from the seed); the
// same seed twice must produce the identical report — the determinism
// property the fault tests pin down, exercised here at figure scale.
//
// Flags: --requests N (default 120), --seeds N (default 1),
//        --trace PATH (Chrome JSON incl. the faults row)

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "serving/experiment.h"
#include "trace/chrome_trace.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {
using namespace liger;

struct ScenarioResult {
  serving::Report report;
  fault::FailoverRuntime::Stats failover;
  std::vector<sim::SimTime> completions;
  sim::SimTime fault_time = 0;
};

ScenarioResult run_scenario(int requests, double rate, sim::SimTime deadline,
                            std::uint64_t seed, sim::SimTime fault_time,
                            gpu::TraceSink* sink) {
  serving::ExperimentConfig cfg;
  cfg.node = gpu::NodeSpec::v100_nvlink(4);
  cfg.model = model::ModelZoo::opt_30b();
  cfg.method = serving::Method::kLiger;
  cfg.rate = rate;
  cfg.workload.num_requests = requests;
  cfg.workload.batch_size = 2;
  cfg.workload.seed = seed;
  cfg.workload.deadline = deadline;
  cfg.workload.max_retries = 5;
  cfg.workload.retry_backoff = sim::milliseconds(2);
  cfg.workload.retry_backoff_cap = sim::milliseconds(64);
  cfg.trace_sink = sink;

  if (fault_time > 0) {
    cfg.faults.enabled = true;
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::kDeviceFailStop;
    ev.time = fault_time;
    ev.node = 0;
    ev.device = 2;
    cfg.faults.plan.events.push_back(ev);
    cfg.faults.detection.heartbeat_interval = sim::microseconds(500);
    cfg.faults.detection.miss_threshold = 3;
    cfg.faults.replan_latency = sim::milliseconds(5);
  }

  const auto out = serving::run_experiment_detailed(cfg);
  return ScenarioResult{out.report, out.failover, out.completion_times, fault_time};
}

void print_goodput_timeline(const ScenarioResult& r, int buckets) {
  if (r.completions.empty()) return;
  const sim::SimTime span = r.report.makespan > 0 ? r.report.makespan : 1;
  std::vector<int> counts(static_cast<std::size_t>(buckets), 0);
  for (sim::SimTime t : r.completions) {
    int b = static_cast<int>((t * buckets) / span);
    if (b >= buckets) b = buckets - 1;
    ++counts[static_cast<std::size_t>(b)];
  }
  const double bucket_s = sim::to_seconds(span) / buckets;
  std::printf("  goodput timeline (batches/s per %.1f ms bucket):\n", 1e3 * bucket_s);
  std::printf("  ");
  for (int b = 0; b < buckets; ++b) {
    const sim::SimTime lo = span * b / buckets;
    const sim::SimTime hi = span * (b + 1) / buckets;
    const bool outage = r.fault_time > 0 && r.fault_time >= lo && r.fault_time < hi;
    std::printf("%7.1f%s", static_cast<double>(counts[static_cast<std::size_t>(b)]) / bucket_s,
                outage ? "!" : " ");
  }
  std::printf("\n  (! marks the bucket containing the fault)\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int requests = static_cast<int>(flags.get_int("requests", 120));
  const int seeds = static_cast<int>(flags.get_int("seeds", 1));
  const std::string trace_path = flags.get_string("trace", "");

  const auto node = gpu::NodeSpec::v100_nvlink(4);
  const auto model = model::ModelZoo::opt_30b();
  const sim::SimTime unit = serving::isolated_intra_batch_time(
      node, model, 2, 72, model::Phase::kPrefill);
  const double rate = 0.7 / sim::to_seconds(unit);  // healthy headroom
  // Tight enough that an outage (detection + replan + retry backoff)
  // blows it, generous enough that the healthy run never does.
  const sim::SimTime deadline = 2 * unit;
  // Mid-stream: roughly half the offered requests have arrived.
  const sim::SimTime base_fault_time =
      sim::from_seconds(static_cast<double>(requests) / (2.0 * rate));

  bench::print_header(
      "Fig 16: availability under fail-stop (OPT-30B, 4xV100, Liger; " +
      std::to_string(requests) + " requests, deadline " +
      std::to_string(sim::to_ms(deadline)) + " ms)");

  trace::ChromeTraceSink sink;
  const auto healthy = run_scenario(requests, rate, deadline, 7, 0, nullptr);
  const auto faulted = run_scenario(requests, rate, deadline, 7, base_fault_time,
                                    trace_path.empty() ? nullptr : &sink);

  std::printf("%-28s | %10s | %10s\n", "", "healthy", "fail-stop");
  auto row = [](const char* label, double a, double b, const char* unit_str) {
    std::printf("%-28s | %10.3f | %10.3f %s\n", label, a, b, unit_str);
  };
  row("goodput (batches/s)", healthy.report.goodput_bps, faulted.report.goodput_bps, "");
  row("throughput (batches/s)", healthy.report.throughput_bps,
      faulted.report.throughput_bps, "");
  row("avg latency (ms)", healthy.report.avg_latency_ms, faulted.report.avg_latency_ms, "");
  row("p99 latency (ms)", healthy.report.p99_latency_ms, faulted.report.p99_latency_ms, "");
  row("SLO violation rate", healthy.report.slo_violation_rate,
      faulted.report.slo_violation_rate, "");
  std::printf("%-28s | %10zu | %10zu\n", "timed out", healthy.report.timed_out,
              faulted.report.timed_out);
  std::printf("%-28s | %10zu | %10zu\n", "retries", healthy.report.retries,
              faulted.report.retries);
  std::printf("%-28s | %10zu | %10zu\n", "lost", healthy.report.lost, faulted.report.lost);

  std::printf("\nfailover: fault @%.2f ms -> detected @%.2f ms (+%.2f ms) "
              "-> recovered @%.2f ms (+%.2f ms), tp 4 -> 3\n",
              sim::to_ms(faulted.fault_time),
              sim::to_ms(faulted.failover.last_fault_detected),
              sim::to_ms(faulted.failover.last_fault_detected - faulted.fault_time),
              sim::to_ms(faulted.failover.last_recovered),
              sim::to_ms(faulted.failover.last_recovery_latency()));
  std::printf("dropped in flight: %llu, deferred during outage: %llu\n",
              static_cast<unsigned long long>(faulted.failover.requests_dropped),
              static_cast<unsigned long long>(faulted.failover.requests_deferred));
  print_goodput_timeline(faulted, 10);

  if (seeds > 1) {
    bench::print_subheader("chaos sweep: fail-stop across fault seeds");
    std::printf("%6s | %12s | %10s | %9s | %8s | %6s | %5s\n", "seed", "fault(ms)",
                "goodput", "slo-viol", "retries", "lost", "det");
    for (int s = 0; s < seeds; ++s) {
      // Fault time jittered deterministically per seed: +/- 25% of the
      // half-way point, from a seed-forked stream.
      util::Rng rng(0xfa417u + static_cast<std::uint64_t>(s));
      const double jitter = 0.5 + 0.5 * rng.next_double();
      const sim::SimTime ft =
          static_cast<sim::SimTime>(static_cast<double>(base_fault_time) * jitter);
      const auto r = run_scenario(requests, rate, deadline,
                                  static_cast<std::uint64_t>(s) + 1, ft, nullptr);
      // Replay: the same seed and fault time must reproduce the report
      // bit for bit — availability runs stay deterministic.
      const auto replay = run_scenario(requests, rate, deadline,
                                       static_cast<std::uint64_t>(s) + 1, ft, nullptr);
      const bool identical =
          r.report.goodput_bps == replay.report.goodput_bps &&
          r.report.timed_out == replay.report.timed_out &&
          r.report.retries == replay.report.retries &&
          r.report.completed == replay.report.completed &&
          r.failover.last_recovered == replay.failover.last_recovered;
      if (!identical) {
        std::printf("seed %d: REPLAY DIVERGED\n", s);
        return 1;
      }
      std::printf("%6d | %12.2f | %10.3f | %9.3f | %8zu | %6zu | %5.2f\n", s,
                  sim::to_ms(ft), r.report.goodput_bps, r.report.slo_violation_rate,
                  r.report.retries, r.report.lost,
                  sim::to_ms(r.failover.last_fault_detected - ft));
    }
    std::printf("(each row replayed twice and compared bit-for-bit)\n");
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    sink.write_json(out);
    std::printf("\ntrace written to %s (fault lifecycle on pid=-2 'faults' row)\n",
                trace_path.c_str());
  }

  std::printf("\nThe outage bucket shows the goodput dip: in-flight batches die with\n"
              "the failed device, retries back off while the heartbeat detector\n"
              "confirms the loss, and the survivor TP group ramps back at ~3/4 of\n"
              "the healthy rate.\n");
  return 0;
}
