// Fig 3 reproduction: strong scaling of the intra-operator approach.
//
// Paper case study (§2.2.1): OPT-30B on the 4xV100/NVLink node scales
// 2.58x from 1 to 4 devices with communication taking 20.7% of the
// total time; GLM-130B on the 4xA100/PCIe node scales 1.91x with 47.1%
// communication. One batch is executed in isolation per device count;
// computation/communication busy times come from the kernel trace.
//
// Flags: --batch N (default 2), --seq N (default 64)

#include <cstdio>

#include "baselines/intra_op_runtime.h"
#include "bench_util.h"
#include "model/model_spec.h"
#include "trace/chrome_trace.h"
#include "util/flags.h"

namespace {

using namespace liger;

struct ScalingRow {
  int devices;
  double total_ms;
  double comm_frac;
};

ScalingRow run_point(gpu::NodeSpec node_spec, const model::ModelSpec& model, int devices,
                     int batch, int seq) {
  node_spec.num_devices = devices;
  sim::Engine engine;
  gpu::Node node(engine, node_spec);
  trace::ChromeTraceSink sink;
  node.set_trace_sink(&sink);

  baselines::IntraOpRuntime runtime(node, model);
  sim::SimTime done = 0;
  runtime.set_completion_hook(
      [&](const model::BatchRequest&, sim::SimTime t) { done = t; });

  model::BatchRequest req;
  req.id = 0;
  req.batch_size = batch;
  req.seq = seq;
  runtime.submit(req);
  engine.run();

  sim::SimTime comm = 0, any = 0;
  for (int d = 0; d < devices; ++d) {
    comm += sink.busy_time(d, gpu::KernelKind::kComm);
    any += sink.busy_time(d, gpu::KernelKind::kCompute) +
           sink.busy_time(d, gpu::KernelKind::kComm) - sink.overlap_time(d);
  }
  ScalingRow row;
  row.devices = devices;
  row.total_ms = sim::to_ms(done);
  row.comm_frac = any > 0 ? static_cast<double>(comm) / static_cast<double>(any) : 0.0;
  return row;
}

void run_case(const char* label, const gpu::NodeSpec& node, const model::ModelSpec& model,
              int batch, int seq, double paper_speedup, double paper_comm) {
  bench::print_subheader(label);
  std::printf("%8s %12s %10s %10s\n", "devices", "latency(ms)", "speedup", "comm%");
  double t1 = 0;
  for (int devices : {1, 2, 4}) {
    const ScalingRow row = run_point(node, model, devices, batch, seq);
    if (devices == 1) t1 = row.total_ms;
    std::printf("%8d %12.2f %9.2fx %9.1f%%\n", row.devices, row.total_ms,
                t1 / row.total_ms, 100.0 * row.comm_frac);
  }
  std::printf("paper: %.2fx speedup at 4 devices, %.1f%% communication\n", paper_speedup,
              paper_comm);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int batch = static_cast<int>(flags.get_int("batch", 2));
  const int seq = static_cast<int>(flags.get_int("seq", 64));

  bench::print_header("Fig 3: strong scaling of the intra-operator approach");
  run_case("OPT-30B on V100/NVLink", gpu::NodeSpec::v100_nvlink(), model::ModelZoo::opt_30b(),
           batch, seq, 2.58, 20.7);
  run_case("GLM-130B on A100/PCIe", gpu::NodeSpec::a100_pcie(), model::ModelZoo::glm_130b(),
           batch, seq, 1.91, 47.1);
  return 0;
}
