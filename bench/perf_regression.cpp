// Perf-regression harness for the simulation core.
//
// Self-timed (no google-benchmark dependency) so it can run in CI as a
// smoke check. Measures the hot paths the event-engine redesign
// targets and writes machine-readable results to a JSON file:
//
//   * engine_schedule_run  — schedule n events, drain them
//   * engine_cancel_churn  — rebalance pattern: cancel + reschedule
//   * device_kernel_churn  — many kernels through the device model
//   * submit_decode_steady — steady-state LigerRuntime::submit() of
//                            identically shaped decode batches (the
//                            per-token CPU cost of generative serving)
//   * round_materialize    — decode backlog driven to completion; the
//                            round-plan materialization + execution path
//   * fig10_panel_a        — one end-to-end serving experiment
//                            (OPT-30B, 4xV100-NVLink, batch 2, Liger)
//   * fig11_generative     — end-to-end multi-conversation generative
//                            serving (prefill + chained decodes)
//   * serving_overload     — rounds vs continuous batching under an
//                            arrival rate above capacity: both modes
//                            serve the identical generative workload
//                            against a deadline calibrated between their
//                            worst-case latencies, and the JSON records
//                            goodput + SLO-violation rate for each. A
//                            continuous mode that fails to beat rounds
//                            prints a warning without failing the run.
//   * serving_availability — fail-stop mid-run under continuous
//                            batching: a healthy run calibrates the
//                            goodput baseline, then the same workload
//                            replays with a device fail-stop at the
//                            midpoint. The JSON records the goodput dip
//                            against the healthy run, detection and
//                            recovery timestamps, and the latency from
//                            detection to the first post-recovery
//                            completion. A run that loses requests,
//                            serves nothing after the fault, or never
//                            completes anything post-recovery prints a
//                            warning without failing the harness.
//   * fig15_multinode      — end-to-end 4-node hybrid serving (8-GPU
//                            nodes, two pipeline stages per node), swept
//                            over engine_threads {1, 2, 4, 8, hw} plus a
//                            speculation off/on pair at 4 threads; every
//                            partitioned entry records its wall-clock
//                            speedup_vs_serial and the optimistic-
//                            execution counters
//                            (speculated/committed/rolled_back), the
//                            harness exits non-zero if any partitioned
//                            makespan diverges from serial, and it warns
//                            (or fails, under --fail_below_serial) when
//                            a partitioned run is slower than serial.
//                            The speculative entry underperforming the
//                            speculation=off entry is always a non-fatal
//                            warning, even under --fail_below_serial:
//                            the production domains are coroutine-backed
//                            and decline checkpoint hooks, so the pair
//                            mostly guards that the speculation plumbing
//                            costs nothing when it cannot engage.
//
// Flags:
//   --out FILE          output path            (default BENCH_engine.json)
//   --min_time SECS     min measured time/bench (default 0.3)
//   --requests N        fig10 panel-a requests  (default 120)
//   --fig15_requests N  fig15 hybrid requests   (default 96)
//   --fig15_speculation N  optimistic budget for the speculative fig15
//                       entries (default 256; 0 disables the pair)
//   --filter SUBSTR     run only benchmarks whose name contains SUBSTR
//   --fail_below_serial exit non-zero if any partitioned fig15 entry is
//                       slower than serial (the CI regression guard; off
//                       by default so a busy local machine cannot fail
//                       the harness spuriously)
//   --baseline          also print the recorded pre-optimization numbers
//
// The JSON includes, alongside the fresh measurements, the recorded
// reference numbers for the same workloads measured on the designs they
// replaced (same build flags, quiesced machine) — the std::map event
// engine for the engine/device benches, the rebuild-per-submit serving
// layer for the steady-state benches — so a single file documents the
// before/after.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/liger_runtime.h"
#include "gpu/device.h"
#include "gpu/node.h"
#include "model/model_spec.h"
#include "serving/experiment.h"
#include "serving/generative.h"
#include "sim/engine.h"
#include "util/flags.h"
#include "util/json_writer.h"

namespace {

using namespace liger;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measurement {
  std::string name;
  std::uint64_t items_per_rep = 0;
  int reps = 0;
  double seconds = 0.0;
  double items_per_second() const {
    return seconds > 0 ? static_cast<double>(items_per_rep) * reps / seconds : 0.0;
  }
  double ns_per_item() const {
    const double ips = items_per_second();
    return ips > 0 ? 1e9 / ips : 0.0;
  }
};

// Repeats `rep` (after one untimed warmup) until `min_time` seconds of
// measured work accumulate.
Measurement measure(const std::string& name, std::uint64_t items_per_rep, double min_time,
                    const std::function<void()>& rep) {
  Measurement m;
  m.name = name;
  m.items_per_rep = items_per_rep;
  rep();  // warmup: faults in pools, warms caches
  const auto start = Clock::now();
  do {
    rep();
    ++m.reps;
    m.seconds = seconds_since(start);
  } while (m.seconds < min_time);
  return m;
}

void engine_schedule_run(int n) {
  sim::Engine engine;
  int fired = 0;
  for (int i = 0; i < n; ++i) {
    engine.schedule_at(i, [&fired] { ++fired; });
  }
  engine.run();
  if (fired != n) std::abort();
}

void engine_cancel_churn(int n, int rounds) {
  sim::Engine engine;
  int fired = 0;
  std::vector<sim::Engine::EventId> ids(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ids[static_cast<std::size_t>(i)] = engine.schedule_at(1000 + i, [&fired] { ++fired; });
  }
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < n; ++i) {
      engine.cancel(ids[static_cast<std::size_t>(i)]);
      ids[static_cast<std::size_t>(i)] =
          engine.schedule_at(1000 + ((i * 7 + round) % n), [&fired] { ++fired; });
    }
  }
  engine.run();
  if (fired != n) std::abort();
}

void device_kernel_churn(int kernels) {
  sim::Engine engine;
  gpu::Device dev(engine, 0, gpu::GpuSpec::v100());
  auto& s0 = dev.create_stream();
  auto& s1 = dev.create_stream();
  for (int i = 0; i < kernels; ++i) {
    gpu::StreamOp op;
    op.kind = gpu::StreamOp::Kind::kKernel;
    op.kernel.name = "k";
    op.kernel.solo_duration = 1000 + i % 7;
    op.kernel.blocks = 40 + i % 3;
    op.kernel.mem_bw_demand = 0.4;
    auto& s = (i % 2 == 0) ? s0 : s1;
    op.stream_seq = s.note_issued();
    dev.deliver(s, std::move(op));
  }
  engine.run();
}

// Steady-state decode submits: every batch has the fig11 shape
// (batch 32, context 16), so after the first token the serving layer is
// handing the runtime work it has assembled before. submit() defers the
// runtime's bookkeeping by the dispatch hop (kSubmitDispatchLatency),
// so the engine is run exactly up to that hop: every submit body
// executes, no kernel does (launches land strictly later), isolating
// the per-token plan-assembly cost from kernel simulation.
void submit_decode_steady(int submits) {
  sim::Engine engine;
  gpu::Node node(engine, gpu::NodeSpec::v100_nvlink(4));
  core::LigerRuntime runtime(node, model::ModelZoo::opt_30b());
  runtime.set_completion_hook([](const model::BatchRequest&, sim::SimTime) {});
  for (int i = 0; i < submits; ++i) {
    model::BatchRequest req;
    req.id = i;
    req.batch_size = 32;
    req.seq = 16;
    req.phase = model::Phase::kDecode;
    runtime.submit(req);
  }
  engine.run_until(core::kSubmitDispatchLatency);
}

// Decode backlog driven to completion: the round pipeline
// (next_round + materialize + launch) in steady state. Returns the
// number of rounds executed (identical across reps — deterministic).
std::uint64_t round_materialize_steady(int batches) {
  sim::Engine engine;
  gpu::Node node(engine, gpu::NodeSpec::v100_nvlink(4));
  core::LigerRuntime runtime(node, model::ModelZoo::opt_30b().with_layers(12));
  runtime.set_completion_hook([](const model::BatchRequest&, sim::SimTime) {});
  for (int i = 0; i < batches; ++i) {
    model::BatchRequest req;
    req.id = i;
    req.batch_size = 32;
    req.seq = 16;
    req.phase = model::Phase::kDecode;
    runtime.submit(req);
  }
  engine.run();
  return runtime.stats().rounds;
}

// End-to-end generative serving (fig11-style workload, full token
// chains): multi-conversation prefill + chained decodes with growing
// KV context. Returns tokens generated; fills wall/sim times.
struct GenerativeSteadyResult {
  double wall_ms = 0.0;
  sim::SimTime makespan = 0;
  std::uint64_t tokens = 0;
  std::uint64_t rounds = 0;
  double tokens_per_second = 0.0;  // simulated-time throughput
};

GenerativeSteadyResult generative_steady(int conversations, int tokens) {
  sim::Engine engine;
  gpu::Node node(engine, gpu::NodeSpec::v100_nvlink(4));
  core::LigerRuntime runtime(node, model::ModelZoo::opt_30b().with_layers(12));
  serving::GenerativeConfig cfg;
  cfg.conversations = conversations;
  cfg.prompt_len = 16;
  cfg.tokens = tokens;
  cfg.batch_size = 32;
  serving::GenerativeDriver driver(engine, runtime, model::ModelZoo::opt_30b().with_layers(12),
                                   node.num_devices(), cfg);
  const auto start = Clock::now();
  const auto result = driver.run();
  GenerativeSteadyResult out;
  out.wall_ms = seconds_since(start) * 1e3;
  out.makespan = result.makespan;
  out.tokens = static_cast<std::uint64_t>(conversations) * static_cast<std::uint64_t>(tokens);
  out.rounds = runtime.stats().rounds;
  out.tokens_per_second = result.tokens_per_second;
  return out;
}

// End-to-end multi-node hybrid serving (fig15-style: OPT-30B, 4 8-GPU
// V100 nodes, IB-HDR, TP=4 so each node hosts two pipeline stages —
// two cells, the two-level hierarchical partition) at a given
// engine_threads.
// The partitioned engine must reproduce the serial run bit-for-bit, so
// the harness aborts on a makespan mismatch — wall-clock deltas between
// entries are pure engine overhead/speedup, never a different
// simulation. Each entry carries the engine's window accounting so a
// regression can be read off the JSON (wide windows + low barrier wait
// = healthy; a speedup below 1.0 prints a warning without failing).
struct Fig15Result {
  int engine_threads = 1;
  std::uint64_t speculation = 0;  // ExperimentConfig::speculation budget
  double wall_ms = 0.0;
  double speedup_vs_serial = 0.0;  // 0 for the serial entry itself
  sim::SimTime makespan = 0;
  std::size_t completed = 0;
  serving::Report::EngineStats engine;
};

Fig15Result fig15_multinode(int requests, int engine_threads,
                            std::uint64_t speculation) {
  serving::ExperimentConfig cfg;
  cfg.node = gpu::NodeSpec::v100_nvlink(8);
  cfg.model = model::ModelZoo::opt_30b();
  cfg.method = serving::Method::kHybrid;
  cfg.num_nodes = 4;
  cfg.hybrid_tp = 4;  // two stage slices (cells) per 8-GPU node
  cfg.hybrid_pp = 8;
  cfg.fabric = interconnect::FabricSpec::ib_hdr();
  cfg.rate = 480.0;
  cfg.workload.num_requests = requests;
  cfg.workload.batch_size = 2;
  cfg.engine_threads = engine_threads;
  cfg.speculation = speculation;
  Fig15Result r;
  r.engine_threads = engine_threads;
  r.speculation = speculation;
  const auto start = Clock::now();
  const auto report = serving::run_experiment(cfg);
  r.wall_ms = seconds_since(start) * 1e3;
  r.makespan = report.makespan;
  r.completed = report.completed;
  r.engine = report.engine;
  return r;
}

// Folds a repeat measurement of the same entry into `into`: keeps the
// minimum wall clock, and requires the deterministic outputs to replay
// exactly (a free determinism check per rep).
void fold_fig15_rep(Fig15Result& into, const Fig15Result& rep, int rep_index) {
  if (rep.makespan != into.makespan || rep.completed != into.completed) {
    std::fprintf(stderr,
                 "fig15 rep %d (%d threads, speculation %llu) diverged from rep 0: "
                 "makespan %lld vs %lld\n",
                 rep_index, into.engine_threads,
                 static_cast<unsigned long long>(into.speculation),
                 static_cast<long long>(rep.makespan),
                 static_cast<long long>(into.makespan));
    std::exit(1);
  }
  into.wall_ms = std::min(into.wall_ms, rep.wall_ms);
}

// Overload scenario (arrival rate far above capacity) comparing the
// static-rounds baseline against iteration-level continuous batching on
// the identical workload. Deterministic: same seed, same RNG discipline
// in both modes.
serving::ExperimentConfig overload_config(serving::BatchingMode mode,
                                          sim::SimTime deadline) {
  serving::ExperimentConfig cfg;
  cfg.node = gpu::NodeSpec::test_node(2);
  cfg.model = model::ModelZoo::tiny_test();
  cfg.method = serving::Method::kLiger;
  cfg.profile_contention = false;
  cfg.rate = 5000.0;
  cfg.workload.num_requests = 48;
  cfg.workload.batch_size = 2;
  cfg.workload.seq_min = 16;
  cfg.workload.seq_max = 48;
  cfg.workload.decode_tokens_min = 2;
  cfg.workload.decode_tokens_max = 32;
  cfg.workload.deadline = deadline;
  cfg.batching = mode;
  return cfg;
}

struct OverloadResult {
  serving::Report report;
  double wall_ms = 0.0;
  double deadline_ms = 0.0;
};

// Runs both modes once without a deadline to find their mean latencies,
// pins the SLO midway between them, and measures both modes against it
// (the deadline only classifies completions, it never alters scheduling
// — the calibrated runs replay the same simulations).
void serving_overload(OverloadResult& rounds, OverloadResult& continuous) {
  const auto base_rounds =
      serving::run_experiment(overload_config(serving::BatchingMode::kRounds, 0));
  const auto base_cont =
      serving::run_experiment(overload_config(serving::BatchingMode::kContinuous, 0));
  const double deadline_ms =
      (base_rounds.avg_latency_ms + base_cont.avg_latency_ms) / 2.0;
  const sim::SimTime deadline = sim::from_us(deadline_ms * 1e3);

  auto timed = [deadline, deadline_ms](serving::BatchingMode mode) {
    OverloadResult r;
    r.deadline_ms = deadline_ms;
    const auto start = Clock::now();
    r.report = serving::run_experiment(overload_config(mode, deadline));
    r.wall_ms = seconds_since(start) * 1e3;
    return r;
  };
  rounds = timed(serving::BatchingMode::kRounds);
  continuous = timed(serving::BatchingMode::kContinuous);
}

// Availability scenario: fail-stop mid-run under continuous batching on
// the 4-device test node. 12 heads divide both the full (4) and
// survivor (3) TP widths, so degraded-mode replanning stays legal in
// assert builds too.
serving::ExperimentConfig availability_config(int requests) {
  serving::ExperimentConfig cfg;
  cfg.node = gpu::NodeSpec::test_node(4);
  model::ModelSpec m;
  m.name = "tiny-fault";
  m.layers = 2;
  m.heads = 12;
  m.hidden = 96;
  cfg.model = m;
  cfg.method = serving::Method::kLiger;
  cfg.profile_contention = false;
  cfg.batching = serving::BatchingMode::kContinuous;
  cfg.workload.num_requests = requests;
  cfg.workload.batch_size = 2;
  cfg.workload.seq_min = 16;
  cfg.workload.seq_max = 48;
  cfg.workload.decode_tokens_min = 2;
  cfg.workload.decode_tokens_max = 8;
  cfg.workload.max_retries = 5;
  // Twice the isolated prefill service rate: the fault lands on a busy
  // scheduler with a backlog behind it.
  const sim::SimTime unit = serving::isolated_intra_batch_time(
      cfg.node, cfg.model, cfg.workload.batch_size, 32, model::Phase::kPrefill);
  cfg.rate = 2.0 / sim::to_seconds(unit);
  return cfg;
}

struct AvailabilityResult {
  int requests = 0;
  double wall_ms = 0.0;
  serving::Report report;
  fault::FailoverRuntime::Stats failover;
  double healthy_goodput_rps = 0.0;
  double goodput_dip_frac = 0.0;  // 1 - degraded/healthy goodput
  // Detection -> first completion served by the rebuilt generation;
  // negative when nothing completed after recovery (warned about).
  double recovery_to_first_completion_ms = -1.0;
};

AvailabilityResult serving_availability(int requests) {
  AvailabilityResult r;
  r.requests = requests;
  auto cfg = availability_config(requests);
  const auto healthy = serving::run_experiment(cfg);

  cfg.faults.enabled = true;
  fault::FaultEvent ev;
  ev.kind = fault::FaultKind::kDeviceFailStop;
  ev.time = healthy.makespan / 2;
  ev.device = 2;
  cfg.faults.plan.events.push_back(ev);
  cfg.faults.detection.heartbeat_interval = sim::microseconds(100);
  cfg.faults.detection.miss_threshold = 3;
  cfg.faults.replan_latency = sim::milliseconds(1);

  const auto start = Clock::now();
  const auto out = serving::run_experiment_detailed(cfg);
  r.wall_ms = seconds_since(start) * 1e3;
  r.report = out.report;
  r.failover = out.failover;
  r.healthy_goodput_rps = healthy.goodput_rps;
  r.goodput_dip_frac = healthy.goodput_rps > 0.0
                           ? 1.0 - out.report.goodput_rps / healthy.goodput_rps
                           : 0.0;
  for (const sim::SimTime t : out.completion_times) {
    if (t >= out.failover.last_recovered) {
      r.recovery_to_first_completion_ms = sim::to_ms(t - out.failover.last_fault_detected);
      break;
    }
  }

  if (out.report.completed + out.report.shed != static_cast<std::size_t>(requests)) {
    std::fprintf(stderr,
                 "WARNING: serving_availability lost requests (%zu completed + %zu "
                 "shed of %d)\n",
                 out.report.completed, out.report.shed, requests);
  }
  if (out.report.goodput_rps <= 0.0) {
    std::fprintf(stderr,
                 "WARNING: serving_availability goodput collapsed to zero after the "
                 "fail-stop\n");
  }
  if (r.recovery_to_first_completion_ms < 0.0) {
    std::fprintf(stderr,
                 "WARNING: serving_availability served nothing after recovery "
                 "(failovers=%d)\n",
                 r.failover.failovers);
  }
  return r;
}

double fig10_panel_a_wall_ms(int requests, sim::SimTime& makespan_out) {
  serving::ExperimentConfig cfg;
  cfg.node = gpu::NodeSpec::v100_nvlink(4);
  cfg.model = model::ModelZoo::opt_30b();
  cfg.method = serving::Method::kLiger;
  cfg.rate = 30.0;
  cfg.workload.num_requests = requests;
  cfg.workload.batch_size = 2;
  const auto start = Clock::now();
  const auto report = serving::run_experiment(cfg);
  const double wall_ms = seconds_since(start) * 1e3;
  makespan_out = report.makespan;
  return wall_ms;
}

// Reference numbers for the identical workloads measured against the
// previous std::map-based engine (same sources otherwise, same build
// flags, quiesced machine). Units: items per second.
struct BaselineEntry {
  const char* name;
  double items_per_second;
};
constexpr BaselineEntry kStdMapBaseline[] = {
    {"engine_schedule_run/100000", 7.629e6},
    {"engine_cancel_churn/100000", 4.279e6},
    {"device_kernel_churn/4096", 2.151e6},
};

// Reference numbers for the steady-state serving benches measured
// against the rebuild-per-submit serving layer this PR replaced (every
// submit re-assembled and re-annotated the full op list; every round
// materialized per-rank descriptor copies; plans retained forever).
// Units: items per second (submits/s and rounds/s respectively).
constexpr BaselineEntry kRebuildServingBaseline[] = {
    {"submit_decode_steady/512", 1.328e4},
    {"round_materialize/32", 7.216e4},
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string out_path = flags.get_string("out", "BENCH_engine.json");
  const double min_time = flags.get_double("min_time", 0.3);
  const int requests = static_cast<int>(flags.get_int("requests", 120));
  // --filter substring-matches benchmark names so one benchmark can be
  // iterated on without paying for the whole suite.
  const std::string filter = flags.get_string("filter", "");
  const auto want = [&filter](const std::string& name) {
    return filter.empty() || name.find(filter) != std::string::npos;
  };

  std::vector<Measurement> results;
  if (want("engine_schedule_run/100000")) {
    results.push_back(measure("engine_schedule_run/100000", 100000, min_time,
                              [] { engine_schedule_run(100000); }));
  }
  if (want("engine_cancel_churn/100000")) {
    results.push_back(measure("engine_cancel_churn/100000", 100000 * 8, min_time,
                              [] { engine_cancel_churn(100000, 8); }));
  }
  if (want("device_kernel_churn/4096")) {
    results.push_back(measure("device_kernel_churn/4096", 4096, min_time,
                              [] { device_kernel_churn(4096); }));
  }
  if (want("submit_decode_steady/512")) {
    results.push_back(measure("submit_decode_steady/512", 512, min_time,
                              [] { submit_decode_steady(512); }));
  }
  if (want("round_materialize/32")) {
    const std::uint64_t rounds_per_rep = round_materialize_steady(32);
    results.push_back(measure("round_materialize/32", rounds_per_rep, min_time,
                              [] { round_materialize_steady(32); }));
  }

  const bool run_fig10 = want("fig10_panel_a/end_to_end");
  const bool run_fig11 = want("fig11_generative/end_to_end");
  const bool run_overload = want("serving_overload");
  const bool run_availability = want("serving_availability");
  const bool run_fig15 = want("fig15_multinode/end_to_end");

  sim::SimTime makespan = 0;
  const double fig10_ms = run_fig10 ? fig10_panel_a_wall_ms(requests, makespan) : 0.0;
  const auto generative = run_fig11 ? generative_steady(/*conversations=*/4, /*tokens=*/48)
                                    : GenerativeSteadyResult{};

  OverloadResult overload_rounds;
  OverloadResult overload_cont;
  if (run_overload) {
    serving_overload(overload_rounds, overload_cont);
    if (overload_cont.report.goodput_rps <= overload_rounds.report.goodput_rps ||
        overload_cont.report.slo_violation_rate >=
            overload_rounds.report.slo_violation_rate) {
      std::fprintf(stderr,
                   "WARNING: continuous batching did not beat rounds under overload "
                   "(goodput %.1f vs %.1f req/s, SLO violations %.1f%% vs %.1f%%)\n",
                   overload_cont.report.goodput_rps, overload_rounds.report.goodput_rps,
                   overload_cont.report.slo_violation_rate * 100.0,
                   overload_rounds.report.slo_violation_rate * 100.0);
    }
  }

  AvailabilityResult availability;
  if (run_availability) {
    availability = serving_availability(
        static_cast<int>(flags.get_int("availability_requests", 24)));
  }

  // fig15 hybrid serving: engine_threads sweep {1, 2, 4, 8, hw} with the
  // optimistic-execution budget on for every partitioned entry, plus one
  // speculation-off entry at 4 threads so the off/on wall clocks are
  // directly comparable (hw floor of 2 so the worker path is exercised
  // even on single-core CI runners; 8 recorded unconditionally — it is
  // the acceptance point for the hierarchical partition). Entry 0 is
  // the serial reference. Makespans must agree across the whole
  // (threads x speculation) grid — speculation may only change how the
  // simulation executes, never what it computes.
  const int fig15_requests = static_cast<int>(flags.get_int("fig15_requests", 96));
  const int fig15_reps =
      std::max(1, static_cast<int>(flags.get_int("fig15_reps", 3)));
  const auto fig15_spec =
      static_cast<std::uint64_t>(flags.get_int("fig15_speculation", 256));
  const int hw_threads = std::max(
      2, static_cast<int>(std::thread::hardware_concurrency()));
  struct Fig15Point {
    int threads;
    std::uint64_t speculation;
    bool operator==(const Fig15Point& o) const {
      return threads == o.threads && speculation == o.speculation;
    }
    bool operator<(const Fig15Point& o) const {
      return threads != o.threads ? threads < o.threads
                                  : speculation < o.speculation;
    }
  };
  std::vector<Fig15Point> fig15_points = {{1, 0},          {2, fig15_spec},
                                          {4, 0},          {4, fig15_spec},
                                          {8, fig15_spec}, {hw_threads, fig15_spec}};
  std::sort(fig15_points.begin(), fig15_points.end());
  fig15_points.erase(std::unique(fig15_points.begin(), fig15_points.end()),
                     fig15_points.end());
  std::vector<Fig15Result> fig15;
  if (run_fig15) {
    // Rep-major sampling: each rep sweeps the whole entry list, and each
    // entry keeps its minimum wall clock across reps. speedup_vs_serial
    // divides two wall clocks, and on a shared machine single-shot (or
    // block-per-entry) sampling folds multi-second scheduler-load spikes
    // straight into that ratio; interleaving spreads any spike across all
    // entries so the mins stay comparable. The simulation itself is
    // deterministic — every rep must land the identical makespan, which
    // doubles as a free replay check.
    fig15.reserve(fig15_points.size());
    for (const auto& p : fig15_points) {
      fig15.push_back(fig15_multinode(fig15_requests, p.threads, p.speculation));
    }
    // Later reps rotate the starting entry so any periodic background
    // activity (whose phase can correlate with a fixed sweep order)
    // lands on every entry equally often — without rotation the same
    // one or two entries eat the recurring tick in every rep and their
    // minima never converge to the same floor as the others'.
    for (int rep = 1; rep < fig15_reps; ++rep) {
      const std::size_t k = fig15_points.size();
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t i = (j + static_cast<std::size_t>(rep)) % k;
        fold_fig15_rep(fig15[i],
                       fig15_multinode(fig15_requests, fig15_points[i].threads,
                                       fig15_points[i].speculation),
                       rep);
      }
    }
  }
  bool below_serial = false;
  for (auto& r : fig15) {
    const Fig15Result& fig15_serial = fig15.front();
    if (r.engine_threads == 1) continue;
    if (r.makespan != fig15_serial.makespan || r.completed != fig15_serial.completed) {
      std::fprintf(stderr,
                   "fig15 partitioned run (%d threads, speculation %llu) diverged "
                   "from serial: makespan %lld vs %lld, completed %zu vs %zu\n",
                   r.engine_threads, static_cast<unsigned long long>(r.speculation),
                   static_cast<long long>(r.makespan),
                   static_cast<long long>(fig15_serial.makespan), r.completed,
                   fig15_serial.completed);
      return 1;
    }
    r.speedup_vs_serial = r.wall_ms > 0 ? fig15_serial.wall_ms / r.wall_ms : 0.0;
    if (r.speedup_vs_serial < 1.0) {
      below_serial = true;
      std::fprintf(stderr,
                   "WARNING: fig15 at %d engine threads ran %.2fx serial wall-clock "
                   "(slower than serial; makespan is bit-identical)\n",
                   r.engine_threads, r.speedup_vs_serial);
    }
  }
  // Speculation off/on at the same thread count: always a non-fatal
  // warning (never folded into --fail_below_serial) — with every
  // production domain declining checkpoint hooks the two configurations
  // do identical work, so a gap beyond noise means the speculation
  // plumbing itself regressed the conservative path.
  for (const auto& off : fig15) {
    if (off.speculation != 0 || off.engine_threads == 1) continue;
    for (const auto& on : fig15) {
      if (on.engine_threads != off.engine_threads || on.speculation == 0) continue;
      if (on.wall_ms > off.wall_ms * 1.05) {
        std::fprintf(stderr,
                     "WARNING: fig15 at %d threads with speculation %llu ran %.1f ms "
                     "vs %.1f ms with speculation off\n",
                     on.engine_threads,
                     static_cast<unsigned long long>(on.speculation), on.wall_ms,
                     off.wall_ms);
      }
    }
  }

  std::printf("%-28s %12s %14s %10s\n", "benchmark", "reps", "items/s", "ns/item");
  for (const auto& m : results) {
    std::printf("%-28s %12d %14.3e %10.1f\n", m.name.c_str(), m.reps, m.items_per_second(),
                m.ns_per_item());
  }
  if (run_fig10) {
    std::printf("%-28s %12s %11.1f ms (makespan %.2f sim-ms, %d requests)\n",
                "fig10_panel_a/end_to_end", "1", fig10_ms, sim::to_ms(makespan), requests);
  }
  if (run_fig11) {
    std::printf("%-28s %12s %11.1f ms (makespan %.2f sim-ms, %llu tokens, %llu rounds)\n",
                "fig11_generative/end_to_end", "1", generative.wall_ms,
                sim::to_ms(generative.makespan), (unsigned long long)generative.tokens,
                (unsigned long long)generative.rounds);
  }
  if (run_overload) {
    for (const auto* o : {&overload_rounds, &overload_cont}) {
      const bool cont = o == &overload_cont;
      std::printf(
          "%-28s %12s %11.1f ms (goodput %.1f req/s, SLO violations %.1f%%, "
          "deadline %.2f sim-ms%s)\n",
          cont ? "serving_overload/continuous" : "serving_overload/rounds", "1",
          o->wall_ms, o->report.goodput_rps, o->report.slo_violation_rate * 100.0,
          o->deadline_ms,
          cont ? "" : ", baseline");
    }
  }
  if (run_availability) {
    std::printf(
        "%-28s %12s %11.1f ms (goodput %.1f req/s vs %.1f healthy, dip %.1f%%, "
        "detect %.2f sim-ms, recovery-to-token %.2f sim-ms, %zu shed)\n",
        "serving_availability/failstop", "1", availability.wall_ms,
        availability.report.goodput_rps, availability.healthy_goodput_rps,
        availability.goodput_dip_frac * 100.0,
        sim::to_ms(availability.failover.last_fault_detected),
        availability.recovery_to_first_completion_ms, availability.report.shed);
  }
  for (const auto& r : fig15) {
    if (r.engine_threads == 1) {
      std::printf("%-28s %12s %11.1f ms (makespan %.2f sim-ms, %d requests, 1 thread)\n",
                  "fig15_multinode/end_to_end", "1", r.wall_ms, sim::to_ms(r.makespan),
                  fig15_requests);
      continue;
    }
    std::printf(
        "%-28s %12s %11.1f ms (makespan identical, %d threads, spec %llu, %.2fx "
        "serial wall, %llu windows, %llu inner, %.1f events/window, "
        "speculated %llu/rolled back %llu)\n",
        "fig15_multinode/end_to_end", "1", r.wall_ms, r.engine_threads,
        (unsigned long long)r.speculation, r.speedup_vs_serial,
        (unsigned long long)r.engine.windows,
        (unsigned long long)r.engine.inner_windows, r.engine.events_per_window,
        (unsigned long long)r.engine.speculated,
        (unsigned long long)r.engine.rolled_back);
  }
  if (flags.get_bool("baseline", false)) {
    std::printf("\nstd::map engine baseline (recorded):\n");
    for (const auto& b : kStdMapBaseline) {
      std::printf("%-28s %14.3e items/s\n", b.name, b.items_per_second);
    }
    std::printf("\nrebuild-per-submit serving baseline (recorded):\n");
    for (const auto& b : kRebuildServingBaseline) {
      std::printf("%-28s %14.3e items/s\n", b.name, b.items_per_second);
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  {
    util::JsonWriter json(out);
    json.begin_object();
    json.kv("schema", "liger-perf-regression-v1");
    json.kv("min_time_s", min_time);
    json.key("benchmarks");
    json.begin_array();
    for (const auto& m : results) {
      json.begin_object();
      json.kv("name", m.name);
      json.kv("reps", m.reps);
      json.kv("items_per_second", m.items_per_second());
      json.kv("ns_per_item", m.ns_per_item());
      json.end_object();
    }
    if (run_fig10) {
      json.begin_object();
      json.kv("name", "fig10_panel_a/end_to_end");
      json.kv("requests", requests);
      json.kv("wall_ms", fig10_ms);
      json.kv("sim_makespan_ms", sim::to_ms(makespan));
      json.end_object();
    }
    if (run_fig11) {
      json.begin_object();
      json.kv("name", "fig11_generative/end_to_end");
      json.kv("tokens", static_cast<std::int64_t>(generative.tokens));
      json.kv("rounds", static_cast<std::int64_t>(generative.rounds));
      json.kv("wall_ms", generative.wall_ms);
      json.kv("sim_makespan_ms", sim::to_ms(generative.makespan));
      json.kv("sim_tokens_per_second", generative.tokens_per_second);
      json.end_object();
    }
    if (run_overload) {
      for (const auto* o : {&overload_rounds, &overload_cont}) {
        json.begin_object();
        json.kv("name", o == &overload_cont ? "serving_overload/continuous"
                                            : "serving_overload/rounds");
        json.kv("wall_ms", o->wall_ms);
        json.kv("deadline_ms", o->deadline_ms);
        json.kv("completed", static_cast<std::int64_t>(o->report.completed));
        json.kv("goodput_rps", o->report.goodput_rps);
        json.kv("slo_violation_rate", o->report.slo_violation_rate);
        json.kv("sim_makespan_ms", sim::to_ms(o->report.makespan));
        json.kv("tokens_per_second", o->report.generative.tokens_per_second);
        json.kv("padding_tokens",
                static_cast<std::int64_t>(o->report.generative.padding_tokens));
        json.kv("preemptions",
                static_cast<std::int64_t>(o->report.generative.preemptions));
        json.kv("kv_peak_used_blocks", o->report.generative.kv_peak_used_blocks);
        json.kv("plan_cache_peak_size",
                static_cast<std::int64_t>(o->report.plan_cache.peak_size));
        json.kv("plan_cache_evictions",
                static_cast<std::int64_t>(o->report.plan_cache.evictions));
        json.end_object();
      }
    }
    if (run_availability) {
      json.begin_object();
      json.kv("name", "serving_availability/failstop");
      json.kv("requests", availability.requests);
      json.kv("wall_ms", availability.wall_ms);
      json.kv("completed", static_cast<std::int64_t>(availability.report.completed));
      json.kv("shed", static_cast<std::int64_t>(availability.report.shed));
      json.kv("fault_requeues",
              static_cast<std::int64_t>(availability.report.generative.fault_requeues));
      json.kv("goodput_rps", availability.report.goodput_rps);
      json.kv("healthy_goodput_rps", availability.healthy_goodput_rps);
      json.kv("goodput_dip_frac", availability.goodput_dip_frac);
      json.kv("detect_ms", sim::to_ms(availability.failover.last_fault_detected));
      json.kv("recovered_ms", sim::to_ms(availability.failover.last_recovered));
      json.kv("recovery_to_first_completion_ms",
              availability.recovery_to_first_completion_ms);
      json.kv("sim_makespan_ms", sim::to_ms(availability.report.makespan));
      json.end_object();
    }
    for (const auto& r : fig15) {
      json.begin_object();
      json.kv("name", "fig15_multinode/end_to_end");
      json.kv("engine_threads", r.engine_threads);
      json.kv("speculation", static_cast<std::int64_t>(r.speculation));
      json.kv("requests", fig15_requests);
      json.kv("wall_ms", r.wall_ms);
      json.kv("sim_makespan_ms", sim::to_ms(r.makespan));
      if (r.engine_threads > 1) {
        json.kv("speedup_vs_serial", r.speedup_vs_serial);
        json.kv("engine_windows", static_cast<std::int64_t>(r.engine.windows));
        json.kv("engine_inner_windows",
                static_cast<std::int64_t>(r.engine.inner_windows));
        json.kv("engine_equal_time_rounds",
                static_cast<std::int64_t>(r.engine.equal_time_rounds));
        json.kv("engine_events_per_window", r.engine.events_per_window);
        json.kv("engine_posts_routed", static_cast<std::int64_t>(r.engine.posts_routed));
        json.kv("engine_barrier_wait_ms", r.engine.barrier_wait_ns / 1e6);
        json.kv("engine_speculated", static_cast<std::int64_t>(r.engine.speculated));
        json.kv("engine_committed", static_cast<std::int64_t>(r.engine.committed));
        json.kv("engine_rolled_back",
                static_cast<std::int64_t>(r.engine.rolled_back));
        json.kv("engine_staged_posts",
                static_cast<std::int64_t>(r.engine.staged_posts));
      }
      json.end_object();
    }
    json.end_array();
    json.key("baseline_std_map_engine");
    json.begin_array();
    for (const auto& b : kStdMapBaseline) {
      json.begin_object();
      json.kv("name", b.name);
      json.kv("items_per_second", b.items_per_second);
      json.end_object();
    }
    json.end_array();
    json.key("baseline_rebuild_serving");
    json.begin_array();
    for (const auto& b : kRebuildServingBaseline) {
      json.begin_object();
      json.kv("name", b.name);
      json.kv("items_per_second", b.items_per_second);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (below_serial && flags.get_bool("fail_below_serial", false)) {
    std::fprintf(stderr,
                 "FAIL: --fail_below_serial set and at least one partitioned fig15 "
                 "entry ran slower than serial\n");
    return 1;
  }
  return 0;
}
