// google-benchmark micro benches: simulation-engine health (event
// throughput, device dispatch cost, Algorithm 1 planning cost).

#include <benchmark/benchmark.h>

#include "collective/collective.h"
#include "core/scheduler.h"
#include "gpu/node.h"
#include "model/layer_builder.h"
#include "profile/decomposition_planner.h"
#include "profile/profile_table.h"
#include "sim/engine.h"

namespace {

using namespace liger;

void BM_EngineScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(i, [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

// The rebalance() pattern: a population of pending events where each
// "state change" cancels and reschedules every member. This is the
// cancel-heavy workload that dominates device-model time.
void BM_EngineCancelChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kRounds = 8;
  for (auto _ : state) {
    sim::Engine engine;
    int fired = 0;
    std::vector<sim::Engine::EventId> ids(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      ids[static_cast<std::size_t>(i)] =
          engine.schedule_at(1000 + i, [&fired] { ++fired; });
    }
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < n; ++i) {
        engine.cancel(ids[static_cast<std::size_t>(i)]);
        ids[static_cast<std::size_t>(i)] =
            engine.schedule_at(1000 + ((i * 7 + round) % n), [&fired] { ++fired; });
      }
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n * kRounds);
}
BENCHMARK(BM_EngineCancelChurn)->Arg(1000)->Arg(100000);

// Many small concurrent kernels with high bandwidth demand: every
// completion perturbs the shared-bandwidth pool, so each one triggers a
// rebalance over every running kernel (a "rebalance storm").
void BM_DeviceRebalanceStorm(benchmark::State& state) {
  const int kernels = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    gpu::Device dev(engine, 0, gpu::GpuSpec::v100());
    auto& s0 = dev.create_stream();
    auto& s1 = dev.create_stream();
    for (int i = 0; i < kernels; ++i) {
      gpu::StreamOp op;
      op.kind = gpu::StreamOp::Kind::kKernel;
      op.kernel.name = "storm";
      op.kernel.solo_duration = 500 + 97 * (i % 11);
      op.kernel.blocks = 1 + i % 3;  // tiny kernels -> high concurrency
      op.kernel.mem_bw_demand = 0.9;  // pool oversubscribed -> shared rates
      auto& s = (i % 2 == 0) ? s0 : s1;
      op.stream_seq = s.note_issued();
      dev.deliver(s, std::move(op));
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * kernels);
}
BENCHMARK(BM_DeviceRebalanceStorm)->Arg(256)->Arg(2048);

void BM_DeviceKernelChurn(benchmark::State& state) {
  const int kernels = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    gpu::Device dev(engine, 0, gpu::GpuSpec::v100());
    auto& s0 = dev.create_stream();
    auto& s1 = dev.create_stream();
    for (int i = 0; i < kernels; ++i) {
      gpu::StreamOp op;
      op.kind = gpu::StreamOp::Kind::kKernel;
      op.kernel.name = "k";
      op.kernel.solo_duration = 1000 + i % 7;
      op.kernel.blocks = 40 + i % 3;
      op.kernel.mem_bw_demand = 0.4;
      auto& s = (i % 2 == 0) ? s0 : s1;
      op.stream_seq = s.note_issued();
      dev.deliver(s, std::move(op));
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * kernels);
}
BENCHMARK(BM_DeviceKernelChurn)->Arg(256)->Arg(4096);

// Optimistic-execution primitives (sim/engine.h speculation API): the
// numbers that make the speculation-budget default data-driven.
//
// Speculate-and-commit is the winning path: every event runs under the
// speculation log (slot retained, spawns/cancels recorded) and the
// episode later commits wholesale. items/s here is "events
// checkpointed per second" — the throughput ceiling of a domain running
// past its conservative horizon. The checkpoint hooks copy a 4 KiB
// state block per episode, a representative domain-local snapshot.
void BM_EngineSpeculateCommit(benchmark::State& state) {
  const int budget = static_cast<int>(state.range(0));
  std::vector<std::uint8_t> model_state(4096, 0xab);
  std::vector<std::uint8_t> snapshot;
  for (auto _ : state) {
    sim::Engine engine;
    engine.set_checkpoint_hooks([&] { snapshot = model_state; },
                                [&] { model_state = snapshot; });
    int fired = 0;
    for (int i = 0; i < budget; ++i) {
      engine.schedule_at(i, [&fired] { ++fired; });
    }
    const std::uint64_t speculated =
        engine.run_speculative(static_cast<std::uint64_t>(budget));
    if (engine.spec_commit_all() != speculated) std::abort();
    if (fired != budget) std::abort();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * budget);
}
BENCHMARK(BM_EngineSpeculateCommit)->Arg(64)->Arg(1024);

// The losing path: the same episode is rolled back (events re-queued
// under their original slots, clock and counters restored, model state
// restored) and then re-executed conservatively. items/s is the
// rollback re-execution rate — how fast a domain recovers from a
// straggler; the gap to BM_EngineSpeculateCommit is the price of a
// misprediction and what bounds a sane speculation budget.
void BM_EngineSpeculateRollback(benchmark::State& state) {
  const int budget = static_cast<int>(state.range(0));
  std::vector<std::uint8_t> model_state(4096, 0xab);
  std::vector<std::uint8_t> snapshot;
  for (auto _ : state) {
    sim::Engine engine;
    engine.set_checkpoint_hooks([&] { snapshot = model_state; },
                                [&] { model_state = snapshot; });
    int fired = 0;
    for (int i = 0; i < budget; ++i) {
      engine.schedule_at(i, [&fired] { ++fired; });
    }
    engine.run_speculative(static_cast<std::uint64_t>(budget));
    if (engine.spec_rollback() != static_cast<std::uint64_t>(budget)) std::abort();
    engine.run();  // conservative re-execution from the restored state
    if (fired != 2 * budget) std::abort();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * budget);
}
BENCHMARK(BM_EngineSpeculateRollback)->Arg(64)->Arg(1024);

void BM_SchedulerNextRound(benchmark::State& state) {
  sim::Engine engine;
  interconnect::Topology topo(interconnect::InterconnectSpec::nvlink_v100(), 4);
  collective::Communicator comm(engine, topo, gpu::GpuSpec::v100());
  profile::ProfileTable table(comm, 4);
  const model::CostModel cost(gpu::GpuSpec::v100());
  const model::LayerBuilder builder(model::ModelZoo::opt_30b(), cost);
  profile::DecompositionPlanner planner(cost, table, 8);

  model::ExecConfig cfg;
  cfg.batch = 2;
  cfg.seq = 64;
  cfg.tp = 4;
  model::OpList ops = builder.model_ops(cfg);
  table.annotate(ops);

  std::uint64_t rounds = 0;
  for (auto _ : state) {
    core::Scheduler scheduler(planner, core::Scheduler::Options{});
    for (int b = 0; b < 4; ++b) {
      model::BatchRequest req;
      req.id = b;
      scheduler.enqueue(core::FunctionList(req, ops));
    }
    while (scheduler.has_work()) {
      benchmark::DoNotOptimize(scheduler.next_round());
      ++rounds;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_SchedulerNextRound);

}  // namespace

BENCHMARK_MAIN();
