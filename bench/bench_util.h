// Shared helpers for the figure-reproduction harnesses: table
// formatting and rate-sweep construction.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "serving/experiment.h"
#include "util/flags.h"

namespace liger::bench {

inline void print_header(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void print_subheader(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Arrival-rate sweep anchored on the intra-op saturation rate: the
// paper raises the rate until it exceeds Liger's throughput, so the
// interesting region spans from well below intra-op saturation to a
// bit beyond it.
inline std::vector<double> rate_sweep(const gpu::NodeSpec& node, const model::ModelSpec& model,
                                      int batch_size, int mean_seq, model::Phase phase,
                                      std::initializer_list<double> multipliers = {
                                          0.3, 0.6, 0.9, 1.05, 1.2, 1.4, 1.6}) {
  const sim::SimTime t =
      serving::isolated_intra_batch_time(node, model, batch_size, mean_seq, phase);
  const double base = 1.0 / sim::to_seconds(t);
  std::vector<double> rates;
  for (double m : multipliers) rates.push_back(base * m);
  return rates;
}

// One row of a latency/throughput panel.
inline void print_panel_header(const std::vector<serving::Method>& methods) {
  std::printf("%10s |", "rate b/s");
  for (auto m : methods) std::printf(" %13s lat(ms) thr(b/s) |", serving::method_name(m));
  std::printf("\n");
}

struct PanelCell {
  double latency_ms = 0;
  double throughput = 0;
  bool saturated = false;
};

inline void print_panel_row(double rate, const std::vector<PanelCell>& cells) {
  std::printf("%10.3f |", rate);
  for (const auto& c : cells) {
    std::printf("        %10.2f %8.3f%s |", c.latency_ms, c.throughput,
                c.saturated ? "*" : " ");
  }
  std::printf("\n");
}

}  // namespace liger::bench
