// Fig 9 reproduction: GEMM decomposition strategies.
//
// Splitting a transformer GEMM horizontally (rows of the skinny
// activation matrix A) re-reads the large weight matrix B in every
// piece and lowers compute intensity — the accumulated duration of the
// pieces far exceeds the original kernel. The vertical split (columns
// of B) stays near the original. Liger therefore decomposes GEMMs
// vertically (§3.6).

#include <cstdio>

#include "bench_util.h"
#include "model/cost_model.h"
#include "model/decompose.h"
#include "model/layer_builder.h"
#include "model/model_spec.h"

namespace {

using namespace liger;

double pieces_total_ms(const model::OpTemplate& op, int pieces, model::GemmSplit split,
                       const model::CostModel& cost) {
  double total = 0;
  for (const auto& piece : model::decompose_gemm(op, pieces, split, cost)) {
    total += sim::to_ms(piece.kernel.solo_duration);
  }
  return total;
}

void run_shape(const model::OpTemplate& op, const model::CostModel& cost) {
  const double orig = sim::to_ms(op.kernel.solo_duration);
  std::printf("  GEMM %s: M=%lld N=%lld K=%lld, original %.3f ms\n", op.kernel.name.c_str(),
              static_cast<long long>(op.gemm.m), static_cast<long long>(op.gemm.n),
              static_cast<long long>(op.gemm.k), orig);
  std::printf("  %8s %18s %18s\n", "pieces", "vertical (x orig)", "horizontal (x orig)");
  for (int pieces : {2, 4, 8, 16}) {
    const double v = pieces_total_ms(op, pieces, model::GemmSplit::kVertical, cost);
    const double h = pieces_total_ms(op, pieces, model::GemmSplit::kHorizontal, cost);
    std::printf("  %8d %10.3f (%.2fx) %10.3f (%.2fx)\n", pieces, v, v / orig, h, h / orig);
  }
}

}  // namespace

int main() {
  bench::print_header("Fig 9: vertical vs horizontal GEMM decomposition (OPT-30B, V100)");
  const model::CostModel cost(gpu::GpuSpec::v100());
  const model::LayerBuilder builder(model::ModelZoo::opt_30b(), cost);

  for (int batch : {2, 8}) {
    for (int seq : {16, 64}) {
      model::ExecConfig cfg;
      cfg.batch = batch;
      cfg.seq = seq;
      cfg.tp = 4;
      bench::print_subheader("batch " + std::to_string(batch) + ", seq " +
                             std::to_string(seq) + ", tp 4");
      for (const auto& op : builder.layer_ops(cfg)) {
        if (op.cls == model::OpClass::kFfn1Gemm || op.cls == model::OpClass::kQkvGemm) {
          run_shape(op, cost);
        }
      }
    }
  }
  std::printf("\nPaper: the horizontal approach suffers a notable reduction in computation\n"
              "intensity (A is already skinny) and re-reads the larger matrix B; vertical\n"
              "decomposition performs much better and is what Liger uses.\n");
  return 0;
}
