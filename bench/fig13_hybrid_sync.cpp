// Fig 13 reproduction: benefits of hybrid synchronization (§4.5).
//
// Liger with the hybrid approach (pre-launch + inter-stream events) vs
// Liger driven purely by CPU-GPU synchronization, serving OPT-30B on
// the V100 node with batch size 2. The CPU-GPU variant pays the full
// multi-GPU launch gap between rounds — the paper measures ~5 us for a
// single-GPU null kernel but >20 us once all communication kernels on
// 4 GPUs must complete before relaunch.
//
// Flags: --requests N (default 200)

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/model_spec.h"
#include "serving/experiment.h"
#include "util/flags.h"

namespace {
using namespace liger;
using serving::Method;
}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int requests = static_cast<int>(flags.get_int("requests", 200));

  const auto node = gpu::NodeSpec::v100_nvlink(4);
  const auto model = model::ModelZoo::opt_30b();
  const auto rates = bench::rate_sweep(node, model, 2, 72, model::Phase::kPrefill,
                                       {0.3, 0.6, 0.9, 1.05, 1.2, 1.4});

  bench::print_header("Fig 13: hybrid vs CPU-GPU-only synchronization "
                      "(OPT-30B, V100 node, batch 2)");
  const std::vector<Method> methods{Method::kLiger, Method::kLigerCpuSync};
  std::printf("%10s | %-12s lat(ms) thr(b/s) | %-14s lat(ms) thr(b/s)\n", "rate b/s",
              "hybrid", "cpu-gpu-only");
  for (double rate : rates) {
    std::printf("%10.3f |", rate);
    for (Method m : methods) {
      serving::ExperimentConfig cfg;
      cfg.node = node;
      cfg.model = model;
      cfg.method = m;
      cfg.rate = rate;
      cfg.workload.num_requests = requests;
      cfg.workload.batch_size = 2;
      const auto rep = serving::run_experiment(cfg);
      std::printf("     %17.2f %8.3f%s |", rep.avg_latency_ms, rep.throughput_bps,
                  rep.saturated() ? "*" : " ");
    }
    std::printf("\n");
  }
  std::printf("\nPaper: the CPU-GPU-only variant shows an obvious drop in both latency and\n"
              "throughput; multi-GPU launch gaps exceed 20 us vs ~5 us on one GPU.\n");
  return 0;
}
