// §2.3.1 micro-experiment: communication kernel execution lag.
//
// A cooperative NCCL-style kernel launched while compute kernels flood
// the SMs cannot start until blocks free up — even from a high-priority
// stream (priorities cannot preempt). Launching the communication
// kernel first (Liger's ordering, §3.4) removes the lag.

#include <cstdio>

#include "bench_util.h"
#include "collective/collective.h"
#include "gpu/node.h"
#include "sim/engine.h"

namespace {

using namespace liger;

void submit(gpu::Stream& s, gpu::KernelDesc k, std::function<void()> done = {}) {
  gpu::StreamOp op;
  op.kind = gpu::StreamOp::Kind::kKernel;
  op.kernel = std::move(k);
  op.on_complete = std::move(done);
  op.stream_seq = s.note_issued();
  s.device().deliver(s, std::move(op));
}

// Returns the delay between the comm kernels' launch and the collective
// becoming active.
double measure_lag_us(bool comm_first, bool high_priority_comm) {
  sim::Engine engine;
  gpu::Node node(engine, gpu::NodeSpec::v100_nvlink(2));
  collective::Communicator comm(engine, node.topology(), node.spec().gpu,
                                collective::CommConfig::liger_tuned());

  gpu::KernelDesc flood;
  flood.name = "gemm_flood";
  flood.solo_duration = sim::microseconds(400);
  flood.blocks = node.device(0).total_blocks();
  flood.mem_bw_demand = 0.4;

  auto ar = comm.all_reduce(4 << 20, {0, 1}, "ar");
  // The second launch happens 5us after the first — by then the first
  // kernel is already executing and cannot be preempted.
  const sim::SimTime stagger = sim::microseconds(5);
  for (int d = 0; d < 2; ++d) {
    auto& comp_stream = node.device(d).create_stream();
    auto& comm_stream = node.device(d).create_stream(
        high_priority_comm ? gpu::StreamPriority::kHigh : gpu::StreamPriority::kNormal);
    auto ar_kernel = ar.kernels[static_cast<std::size_t>(d)];
    if (comm_first) {
      submit(comm_stream, ar_kernel);
      engine.schedule_at(stagger, [&comp_stream, flood] { submit(comp_stream, flood); });
    } else {
      submit(comp_stream, flood);
      engine.schedule_at(stagger, [&comm_stream, ar_kernel] { submit(comm_stream, ar_kernel); });
    }
  }
  // Lag = time until the collective's rendezvous completes (all member
  // kernels resident).
  while (!ar.collective->active() && !engine.empty()) {
    engine.step();
  }
  const sim::SimTime active_at = engine.now();
  engine.run();
  return sim::to_us(active_at);
}

}  // namespace

int main() {
  bench::print_header("Motivation (paper 2.3.1): communication kernel execution lag");
  std::printf("%-44s %14s\n", "scenario", "comm start(us)");
  std::printf("%-44s %14.1f\n", "compute launched first, normal-priority comm",
              measure_lag_us(false, false));
  std::printf("%-44s %14.1f\n", "compute launched first, HIGH-priority comm",
              measure_lag_us(false, true));
  std::printf("%-44s %14.1f\n", "comm launched first (Liger ordering)",
              measure_lag_us(true, false));
  std::printf("\nPaper: high-priority streams do not fix the lag (no preemption once the\n"
              "compute kernel holds the SMs); only controlling the launch/execution order\n"
              "does — which is what the hybrid synchronization approach provides.\n");
  return 0;
}
